package tsserve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"tsspace"
	"tsspace/internal/obs"
	"tsspace/tsserve"
)

// debugEvent mirrors one NDJSON line of the flight-recorder dump.
type debugEvent struct {
	Seq     uint64 `json:"seq"`
	TimeNs  int64  `json:"t_ns"`
	Kind    string `json:"kind"`
	Session string `json:"session"`
	Pid     int    `json:"pid"`
	NS      int    `json:"ns"`
	Detail  int64  `json:"detail"`
}

func dumpEvents(t *testing.T, front *tsserve.Server) []debugEvent {
	t.Helper()
	rec := httptest.NewRecorder()
	front.EventsHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/events", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("events dump status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events dump Content-Type = %q", ct)
	}
	var events []debugEvent
	sc := bufio.NewScanner(bytes.NewReader(rec.Body.Bytes()))
	for sc.Scan() {
		var e debugEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("events dump line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	return events
}

// The flight recorder must tell the lease's life story: an attach event
// when the wire session registers and a reap event when the TTL reaper
// detaches it, both carrying the session's wire id.
func TestDebugEventsShowAttachAndReap(t *testing.T) {
	ctx := context.Background()
	c, _, front := newTestServerCfg(t, tsserve.ServerConfig{SessionTTL: 50 * time.Millisecond},
		tsspace.WithProcs(1))

	sess, err := c.Attach(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.GetTS(ctx); err != nil {
		t.Fatal(err)
	}

	// With the only pid leased, a fresh attach succeeds exactly when the
	// reaper has freed the idle lease — which records the reap event.
	next, err := c.Attach(ctx)
	if err != nil {
		t.Fatalf("attach after reap window: %v", err)
	}
	defer next.Detach()

	events := dumpEvents(t, front)
	var sawAttach, sawReap bool
	var lastSeq uint64
	for _, e := range events {
		if e.Seq <= lastSeq {
			t.Errorf("event seq not increasing: %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		if e.Session != sess.ID() {
			continue
		}
		switch e.Kind {
		case "attach":
			sawAttach = true
		case "reap":
			sawReap = true
			if e.Detail < 1 {
				t.Errorf("reap event detail (calls served) = %d, want >= 1", e.Detail)
			}
		}
	}
	if !sawAttach || !sawReap {
		t.Fatalf("events for session %s: attach=%v reap=%v (dump: %+v)",
			sess.ID(), sawAttach, sawReap, events)
	}
}

// A getts against a session id the table does not hold must surface in
// the flight recorder as an error event carrying the unknown-session
// wire code.
func TestDebugEventsRecordUnknownSession(t *testing.T) {
	ctx := context.Background()
	c, _, front := newTestServerCfg(t, tsserve.ServerConfig{})

	bogus := strings.Repeat("f", 16)
	body := bytes.NewReader([]byte(`{"count":1}`))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL()+"/session/"+bogus+"/getts", body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bogus-session getts status = %d, want 404", resp.StatusCode)
	}

	for _, e := range dumpEvents(t, front) {
		if e.Kind == "error" && e.Session == bogus {
			return
		}
	}
	t.Fatalf("no error event recorded for unknown session %s", bogus)
}

// promValue extracts one scalar sample value from an exposition body.
func promValue(t *testing.T, body []byte, name string) uint64 {
	t.Helper()
	for _, line := range strings.Split(string(body), "\n") {
		if v, ok := strings.CutPrefix(line, name+" "); ok {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				t.Fatalf("sample %s has value %q: %v", name, v, err)
			}
			return uint64(f)
		}
	}
	t.Fatalf("exposition has no sample %s", name)
	return 0
}

// The JSON /metrics body and the Prometheus exposition are two renderings
// of one registry: after the same traffic, the counters they report must
// agree exactly, and every wire-layer rejection family must be present in
// the exposition even at zero.
func TestMetricsTwoViewsOneRegistry(t *testing.T) {
	ctx := context.Background()
	c, _, _ := newTestServerCfg(t, tsserve.ServerConfig{MaxBatch: 16}, tsspace.WithMetering())

	sess, err := c.Attach(ctx)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]tsspace.Timestamp, 5)
	for i := 0; i < 3; i++ {
		if _, err := sess.GetTSBatch(ctx, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Detach(); err != nil {
		t.Fatal(err)
	}
	// A getts on the now-detached lease drives the unknown-session path.
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL()+"/session/"+sess.ID()+"/getts", bytes.NewReader([]byte(`{"count":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}

	promResp, err := http.Get(c.BaseURL() + "/metrics/prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer promResp.Body.Close()
	if ct := promResp.Header.Get("Content-Type"); ct != obs.TextContentType {
		t.Errorf("exposition Content-Type = %q, want %q", ct, obs.TextContentType)
	}
	var body bytes.Buffer
	if _, err := body.ReadFrom(promResp.Body); err != nil {
		t.Fatal(err)
	}
	families, err := obs.ParseExposition(body.Bytes())
	if err != nil {
		t.Fatalf("exposition does not validate: %v\n%s", err, body.String())
	}

	for _, want := range []struct {
		family string
		sample string // exposition sample name; "" means the bare family
		json   uint64
	}{
		{"tsserve_calls_total", "", m.Calls},
		{"tsserve_batches_total", "", m.Batches},
		{"tsserve_attaches_total", "", m.Attaches},
		{"tsserve_unknown_sessions_total", "", m.UnknownSessions},
		{"tsserve_unknown_namespaces_total", "", m.UnknownNamespaces},
		{"tsserve_rejected_frames_oversized_total", "", m.OversizedFrames},
		{"tsserve_rejected_conns_bad_magic_total", "", m.BadMagicConns},
		// The register-space families are namespace-labeled; the default
		// namespace's sample must agree with the JSON space block.
		{"tsspace_registers_used", `tsspace_registers_used{namespace="default"}`, uint64(m.Space.Written)},
		{"tsserve_ns_calls_total", `tsserve_ns_calls_total{namespace="default"}`, m.Calls},
	} {
		if _, ok := families[want.family]; !ok {
			t.Errorf("exposition missing family %s", want.family)
			continue
		}
		sample := want.sample
		if sample == "" {
			sample = want.family
		}
		if got := promValue(t, body.Bytes(), sample); got != want.json {
			t.Errorf("%s: prometheus %d != json %d", sample, got, want.json)
		}
	}
	// The JSON namespaces section must mirror the labeled families: one
	// entry, the default namespace, same space numbers.
	if len(m.Namespaces) != 1 || m.Namespaces[0].Name != tsserve.DefaultNamespace {
		t.Fatalf("namespaces section = %+v, want exactly the default namespace", m.Namespaces)
	}
	if nsm := m.Namespaces[0]; nsm.Space == nil || nsm.Space.Written != m.Space.Written || nsm.Calls != m.Calls {
		t.Errorf("default-namespace metrics %+v disagree with the top-level view (calls %d, written %d)",
			nsm, m.Calls, m.Space.Written)
	}
	if m.UnknownSessions == 0 {
		t.Error("unknown-session counter did not move")
	}
	if m.Batches != 3 {
		t.Errorf("batches = %d, want 3", m.Batches)
	}

	// The getts latency histogram must cover the batches in both views.
	f, ok := families["tsserve_getts_latency_ns"]
	if !ok || f.Type != "histogram" {
		t.Fatalf("exposition getts latency family missing or mistyped: %+v", f)
	}
	jl, ok := m.Latency["getts"]
	if !ok {
		t.Fatalf("JSON metrics carry no getts latency: %+v", m.Latency)
	}
	if f.Count != jl.Count {
		t.Errorf("getts latency count: prometheus %d != json %d", f.Count, jl.Count)
	}
}
