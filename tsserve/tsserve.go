// Package tsserve puts a tsspace timestamp object behind an HTTP/JSON
// front end, plus the matching Go client. It is the network form of the
// paper's object: the endpoints expose getTS()/compare() and nothing of
// the register machinery.
//
// Wire v2 is session-scoped, mirroring the SDK's SessionAPI — attach a
// lease, pipeline batches on it, detach (idle leases are reaped):
//
//	POST   /session                      → {"session_id": ..., "pid": p, "idle_ttl_ms": t}
//	POST   /session/{id}/getts {"count": k} → {"pid": p, "timestamps": [{"rnd": r, "turn": t}, ...]}
//	DELETE /session/{id}                 → {"calls": c}
//	POST   /compare  {"t1": ..., "t2": ...} → {"before": true}
//	GET    /healthz                      → object identity and status
//	GET    /metrics                      → space report + throughput counters
//	                                       + per-endpoint latency percentiles
//
// The v1 endpoint survives as a deprecated shim over the same machinery:
//
//	POST /getts {"count": k}             — attach + one batch + detach
//
// Wire v3 is the same session surface over a persistent-connection,
// length-prefixed binary protocol (ServeBinary / BinaryClient — see
// binary.go for the framing), sharing the lease table, TTL reaper and
// typed error codes with the endpoints above; it exists because E13
// measured HTTP/JSON at ~100× the algorithm's in-process cost.
//
// Either way a batch is issued back to back by one paper-process, so each
// timestamp happens-before the next and compare must order the batch
// strictly — the invariant the CI smoke test asserts over the wire.
// Across sessions, the object's pid leasing maps any number of concurrent
// HTTP clients onto the configured n paper-processes; when all are
// leased, attaches queue under the request context.
//
// The daemon in cmd/tsserved is a thin flag wrapper around NewServer;
// tests and embedders can mount the Server on any mux.
package tsserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"tsspace"
	"tsspace/internal/obs"
)

// TS is the wire form of a timestamp: the (rnd, turn) pair of the
// timestamp universe ℕ × (ℕ ∪ {0}), compared lexicographically by the
// serving object.
type TS struct {
	Rnd  int64 `json:"rnd"`
	Turn int64 `json:"turn"`
}

// FromTimestamp converts an SDK timestamp to its wire form.
func FromTimestamp(t tsspace.Timestamp) TS { return TS{Rnd: t.Rnd, Turn: t.Turn} }

// Timestamp converts the wire form back to an SDK timestamp.
func (t TS) Timestamp() tsspace.Timestamp { return tsspace.Timestamp{Rnd: t.Rnd, Turn: t.Turn} }

// GetTSRequest asks for a batch of count timestamps issued by one session
// (count < 1 means 1).
type GetTSRequest struct {
	Count int `json:"count"`
}

// GetTSResponse carries the batch in issue order: Timestamps[i]
// happens-before Timestamps[i+1]. Pid is the paper-process that served the
// batch (diagnostic only).
type GetTSResponse struct {
	Pid        int  `json:"pid"`
	Timestamps []TS `json:"timestamps"`
}

// CompareRequest asks whether t1 is ordered before t2.
type CompareRequest struct {
	T1 TS `json:"t1"`
	T2 TS `json:"t2"`
}

// CompareResponse is the compare(t1, t2) verdict.
type CompareResponse struct {
	Before bool `json:"before"`
}

// Health is the /healthz body (also served per namespace at
// /ns/{name}/healthz, reporting that namespace's Object).
type Health struct {
	Status    string `json:"status"`
	Namespace string `json:"namespace"`
	Algorithm string `json:"algorithm"`
	Summary   string `json:"summary,omitempty"`
	Procs     int    `json:"procs"`
	Registers int    `json:"registers"`
	OneShot   bool   `json:"one_shot"`
}

// Space is the register-space section of /metrics, present when the
// object is metered.
type Space struct {
	Registers int    `json:"registers"`
	Written   int    `json:"written"`
	Reads     uint64 `json:"reads"`
	Writes    uint64 `json:"writes"`
}

// Latency is the per-endpoint latency section of /metrics: a percentile
// digest (nanoseconds, measured server-side around the whole handler) per
// operation endpoint, keyed "getts" and "compare". Digests come from the
// same log-bucketed histograms the tsload driver uses, so server-side and
// driver-side percentiles are directly comparable.
type Latency struct {
	Count  uint64  `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  int64   `json:"p50_ns"`
	P90Ns  int64   `json:"p90_ns"`
	P99Ns  int64   `json:"p99_ns"`
	P999Ns int64   `json:"p999_ns"`
	MaxNs  int64   `json:"max_ns"`
}

// Metrics is the /metrics body: the space report next to the throughput
// counters and per-endpoint latency percentiles.
type Metrics struct {
	Algorithm      string `json:"algorithm"`
	Procs          int    `json:"procs"`
	Calls          uint64 `json:"calls"`
	Batches        uint64 `json:"batches"`
	Attaches       uint64 `json:"attaches"`
	ActiveSessions int    `json:"active_sessions"`
	// WireSessions counts every live wire lease (HTTP and binary — both
	// protocols share one session table); BinarySessions the subset
	// attached over the binary transport; ReapedSessions the idle leases
	// the TTL reaper has detached over the server's lifetime.
	// CrashReclaimed counts leases reclaimed because their binary
	// connection closed while still attached — the reaper's sibling
	// channel: a lease abandoned by a crashed or disconnected binary
	// client is returned to the pool by connection teardown when that
	// beats the idle TTL.
	WireSessions   int    `json:"wire_sessions"`
	BinarySessions int    `json:"binary_sessions"`
	ReapedSessions uint64 `json:"reaped_sessions"`
	CrashReclaimed uint64 `json:"crash_reclaimed_sessions"`
	// BinaryFrames and the byte counters track the wire-v3 transport:
	// frames processed (requests) and bytes in/out, magic and length
	// prefixes included.
	BinaryFrames   uint64 `json:"binary_frames"`
	BinaryBytesIn  uint64 `json:"binary_bytes_in"`
	BinaryBytesOut uint64 `json:"binary_bytes_out"`
	// The rejection counters: binary frames over MaxBinaryFrame,
	// connections dropped at the magic check, and session-scoped
	// requests against ids that are not (or no longer) leased. The same
	// families appear in the Prometheus exposition as
	// tsserve_rejected_frames_oversized_total,
	// tsserve_rejected_conns_bad_magic_total and
	// tsserve_unknown_sessions_total.
	OversizedFrames uint64 `json:"oversized_frames"`
	BadMagicConns   uint64 `json:"bad_magic_conns"`
	UnknownSessions uint64 `json:"unknown_sessions"`
	// UnknownNamespaces counts namespace-scoped requests against names
	// that are not (or no longer) provisioned — the broker's own
	// rejection class, deliberately separate from UnknownSessions.
	UnknownNamespaces uint64  `json:"unknown_namespaces"`
	UptimeSeconds     float64 `json:"uptime_seconds"`
	CallsPerSecond    float64 `json:"calls_per_second"`
	Space             *Space  `json:"space,omitempty"`
	// Namespaces reports every live namespace, default first then
	// sorted by name — the JSON rendering of the same per-namespace
	// series the Prometheus view exposes as {namespace="..."} labels.
	Namespaces []NamespaceMetrics `json:"namespaces"`
	Latency    map[string]Latency `json:"latency,omitempty"`
}

// NamespaceMetrics is one namespace's slice of /metrics: identity,
// session accounting and (when the namespace's Object meters) its
// register-space report. The same numbers render in the Prometheus
// view as the namespace-labeled families tsserve_ns_sessions,
// tsserve_ns_calls_total, tsserve_ns_reaped_total,
// tsserve_ns_quota_rejections_total and tsspace_registers_*.
type NamespaceMetrics struct {
	Name            string `json:"name"`
	Algorithm       string `json:"algorithm"`
	Procs           int    `json:"procs"`
	OneShot         bool   `json:"one_shot"`
	MaxSessions     int    `json:"max_sessions,omitempty"`
	Calls           uint64 `json:"calls"`
	WireSessions    int64  `json:"wire_sessions"`
	ReapedSessions  uint64 `json:"reaped_sessions"`
	QuotaRejections uint64 `json:"quota_rejections"`
	Space           *Space `json:"space,omitempty"`
}

// Error codes carried in error bodies, so clients can map failures back to
// the SDK's typed errors without string matching.
const (
	CodeBadRequest = "bad_request"
	CodeExhausted  = "exhausted"
	CodeClosed     = "closed"
	CodeInternal   = "internal"
	// CodeUnknownSession marks a session-scoped request whose id is not
	// (or no longer) leased: detached, idle-reaped, or never attached.
	// The Go client maps it to tsspace.ErrDetached.
	CodeUnknownSession = "unknown_session"
	// CodeUnknownNamespace marks a namespace-scoped request against a
	// name that was never provisioned or is already deprovisioned —
	// deliberately distinct from unknown_session, so namespace typos
	// keep their own rejection family. Maps to ErrUnknownNamespace.
	CodeUnknownNamespace = "unknown_namespace"
	// CodeNamespaceExists marks a PUT /ns/{name} whose name is already
	// provisioned with a different spec. Maps to ErrNamespaceExists.
	CodeNamespaceExists = "namespace_exists"
	// CodeQuota marks an attach beyond the namespace's session quota or
	// a provision beyond the server's namespace cap. Maps to ErrQuota.
	CodeQuota = "quota_exhausted"
)

// ErrorBody is the JSON body of every non-2xx response.
type ErrorBody struct {
	Code  string `json:"code"`
	Error string `json:"error"`
}

// ServerConfig tunes NewServer.
type ServerConfig struct {
	// MaxBatch caps the count of one getts request (v1 or session-scoped);
	// values < 1 mean 1024.
	MaxBatch int
	// SessionTTL is how long a wire session's lease may sit idle before
	// the reaper detaches it and recycles its pid. Values <= 0 mean 60s.
	SessionTTL time.Duration
	// SlowOp is the duration above which an operation is recorded in the
	// flight recorder as a slow-op event (see EventsHandler). Values <= 0
	// mean 10ms.
	SlowOp time.Duration
	// MaxNamespaces caps how many namespaces may be provisioned at once
	// (the default namespace not counted). Values < 1 mean 64; a PUT
	// /ns/{name} beyond the cap is rejected with quota_exhausted.
	MaxNamespaces int
}

// Server is the HTTP front end over a broker of tsspace Objects: the
// constructor's Object serves as the always-present "default"
// namespace, and PUT /ns/{name} provisions further named Objects next
// to it (see broker.go). It implements http.Handler. Call Close on
// shutdown (before closing the default object) to stop the idle
// reaper, release live wire sessions, and close every provisioned
// namespace's Object.
type Server struct {
	maxBatch   int
	sessionTTL time.Duration
	slowOp     time.Duration
	start      time.Time
	mux        *http.ServeMux
	// met is the observability core: every counter, gauge and latency
	// histogram the server publishes, plus the flight recorder. The JSON
	// /metrics view and the Prometheus exposition both render from it.
	met *serverMetrics

	// The namespace table. defaultNS wraps the constructor's Object and
	// is resolvable but never in the map; nsSeq hands out
	// flight-recorder namespace ids.
	nsMu          sync.RWMutex
	namespaces    map[string]*namespace
	defaultNS     *namespace
	nsSeq         uint32
	maxNamespaces int

	// sessions is the one capability-addressed lease table both
	// transports and all namespaces share: ids are unguessable, so the
	// flat map is equivalent to a per-namespace table while keeping the
	// hot-path lookup a single allocation-free map access. Each
	// wireSession carries its namespace; namespace-scoped HTTP routes
	// additionally check the binding.
	sessMu   sync.Mutex
	sessions map[string]*wireSession
	stop     chan struct{}
	stopOnce sync.Once

	// Wire-v3 binary transport state: the listeners ServeBinary runs on,
	// the live connections (closed on shutdown), and an in-flight frame
	// gauge for the drain. binCtx is the server-side context binary
	// operations run under; Close cancels it.
	binCtx       context.Context
	binCancel    context.CancelFunc
	binMu        sync.Mutex
	binListeners []net.Listener
	binConns     map[net.Conn]struct{}
	binBusy      atomic.Int64
}

// NewServer builds the front end for obj, which becomes the "default"
// namespace. The caller keeps ownership of obj (and closes it on
// shutdown, after Close-ing the server); Objects provisioned later via
// PUT /ns/{name} are broker-owned and closed by Close.
func NewServer(obj *tsspace.Object, cfg ServerConfig) *Server {
	maxBatch := cfg.MaxBatch
	if maxBatch < 1 {
		maxBatch = 1024
	}
	ttl := cfg.SessionTTL
	if ttl <= 0 {
		ttl = 60 * time.Second
	}
	slowOp := cfg.SlowOp
	if slowOp <= 0 {
		slowOp = 10 * time.Millisecond
	}
	maxNamespaces := cfg.MaxNamespaces
	if maxNamespaces < 1 {
		maxNamespaces = 64
	}
	_, metered := obj.SpaceTotals()
	s := &Server{
		maxBatch: maxBatch, sessionTTL: ttl, slowOp: slowOp,
		start: time.Now(), mux: http.NewServeMux(),
		namespaces:    make(map[string]*namespace),
		maxNamespaces: maxNamespaces,
		sessions:      make(map[string]*wireSession),
		stop:          make(chan struct{}),
		binConns:      make(map[net.Conn]struct{}),
	}
	s.defaultNS = &namespace{
		name: DefaultNamespace, obj: obj,
		summary:   algorithmSummary(obj.Algorithm()),
		algorithm: obj.Algorithm(), procs: obj.Procs(), metered: metered,
	}
	s.met = newServerMetrics(s)
	s.binCtx, s.binCancel = context.WithCancel(context.Background())
	s.mux.HandleFunc("POST /session", s.timed("attach", s.handleAttach))
	s.mux.HandleFunc("POST /session/{id}/getts", s.timed("getts", s.handleSessionGetTS))
	s.mux.HandleFunc("DELETE /session/{id}", s.handleDetach)
	s.mux.HandleFunc("POST /getts", s.timed("getts", s.handleGetTS))
	s.mux.HandleFunc("POST /compare", s.timed("compare", s.handleCompare))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics/prometheus", s.handlePrometheus)
	// The broker surface (broker.go) plus the wire-v2 session routes
	// replicated per namespace; {name} resolves through requestNS, the
	// un-prefixed routes above serve the default namespace.
	s.mux.HandleFunc("GET /catalog", s.handleCatalog)
	s.mux.HandleFunc("GET /ns", s.handleNamespaces)
	s.mux.HandleFunc("PUT /ns/{name}", s.handleProvision)
	s.mux.HandleFunc("DELETE /ns/{name}", s.handleDeprovision)
	s.mux.HandleFunc("POST /ns/{name}/session", s.timed("attach", s.handleAttach))
	s.mux.HandleFunc("POST /ns/{name}/session/{id}/getts", s.timed("getts", s.handleSessionGetTS))
	s.mux.HandleFunc("DELETE /ns/{name}/session/{id}", s.handleDetach)
	s.mux.HandleFunc("POST /ns/{name}/getts", s.timed("getts", s.handleGetTS))
	s.mux.HandleFunc("POST /ns/{name}/compare", s.timed("compare", s.handleCompare))
	s.mux.HandleFunc("GET /ns/{name}/healthz", s.handleHealthz)
	go s.reapLoop()
	return s
}

// timed records the whole handler's wall time — decode to flush — into the
// endpoint's histogram, so /metrics reports what callers of that endpoint
// experienced minus only the network. Durations over the slow-op
// threshold additionally land in the flight recorder.
func (s *Server) timed(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	lat := s.met.lat[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		d := time.Since(start)
		lat.Record(d.Nanoseconds())
		if d > s.slowOp {
			s.met.ring.Record(obs.EventSlowOp, 0, -1, d.Nanoseconds())
		}
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// handleGetTS is the deprecated v1 endpoint: a thin shim composing wire
// v2's attach + one session-scoped batch + detach into a single request,
// kept so existing clients (and the single-call Client.GetTS) keep
// working. New callers should hold a session across batches instead.
func (s *Server) handleGetTS(w http.ResponseWriter, r *http.Request) {
	ns, ok := s.requestNS(w, r)
	if !ok {
		return
	}
	var req GetTSRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	count := req.Count
	if count < 1 {
		count = 1
	}
	if count > s.maxBatch {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("count %d exceeds the batch cap %d", count, s.maxBatch))
		return
	}
	if ns.obj.OneShot() && count > 1 {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("a one-shot object issues one timestamp per process; ask for count 1, not %d", count))
		return
	}

	sess, err := ns.obj.Attach(r.Context())
	if err != nil {
		s.writeSDKError(w, r, ns, err)
		return
	}
	defer sess.Detach()

	buf := make([]tsspace.Timestamp, count)
	n, err := sess.GetTSBatch(r.Context(), buf)
	if err != nil {
		s.writeSDKError(w, r, ns, fmt.Errorf("timestamp %d/%d: %w", n+1, count, err))
		return
	}
	resp := GetTSResponse{Pid: sess.Pid(), Timestamps: make([]TS, n)}
	for i := 0; i < n; i++ {
		resp.Timestamps[i] = FromTimestamp(buf[i])
	}
	s.met.batches.Inc()
	writeJSON(w, http.StatusOK, resp)
}

// writeSDKError maps SDK errors to their wire codes, so clients can
// recover typed errors via APIError.Is regardless of where in the request
// the failure happened (attach or mid-batch). Flight-recorder events
// carry the namespace the failure happened in.
func (s *Server) writeSDKError(w http.ResponseWriter, r *http.Request, ns *namespace, err error) {
	switch {
	case errors.Is(err, tsspace.ErrExhausted) || errors.Is(err, tsspace.ErrOneShot):
		s.met.ring.RecordNS(obs.EventError, ns.id, 0, -1, int64(binCodeExhausted))
		writeError(w, http.StatusConflict, CodeExhausted, err.Error())
	case errors.Is(err, tsspace.ErrDetached):
		// The lease vanished between lookup and execution (reaper or a
		// concurrent DELETE won the race): same verdict as an unknown id.
		s.met.unknownSessions.Inc()
		s.met.ring.RecordNS(obs.EventError, ns.id, 0, -1, int64(binCodeUnknownSession))
		writeError(w, http.StatusNotFound, CodeUnknownSession, err.Error())
	case errors.Is(err, tsspace.ErrClosed):
		s.met.ring.RecordNS(obs.EventError, ns.id, 0, -1, int64(binCodeClosed))
		writeError(w, http.StatusServiceUnavailable, CodeClosed, err.Error())
	case r.Context().Err() != nil:
		// The client went away while queued or mid-batch; any status works.
		writeError(w, http.StatusServiceUnavailable, CodeInternal, err.Error())
	default:
		s.met.ring.RecordNS(obs.EventError, ns.id, 0, -1, int64(binCodeInternal))
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
	}
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	ns, ok := s.requestNS(w, r)
	if !ok {
		return
	}
	var req CompareRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, CompareResponse{
		Before: ns.obj.Compare(req.T1.Timestamp(), req.T2.Timestamp()),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ns, ok := s.requestNS(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, Health{
		Status:    "ok",
		Namespace: ns.name,
		Algorithm: ns.obj.Algorithm(),
		Summary:   ns.summary,
		Procs:     ns.obj.Procs(),
		Registers: ns.obj.Registers(),
		OneShot:   ns.obj.OneShot(),
	})
}

// decode reads a JSON body strictly; an empty body decodes to the zero
// request.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return nil
		}
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorBody{Code: code, Error: msg})
}
