package tsserve_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"tsspace"
	"tsspace/tsserve"
)

// 64 concurrent clients churn the wire session table — half crash
// (abandon their lease without Detach), half detach cleanly — split
// across wire v2 (HTTP) and wire v3 (binary), which share one table and
// one TTL reaper. The reaper must reclaim every abandoned pid, the full
// namespace must be attachable afterwards, and happens-before must hold
// from every pre-churn timestamp to every post-churn one (the reaped
// pids' sequence history survives reclamation).
//
// Run under -race this doubles as the data-race check on the session
// table: concurrent attach, getTS, detach, reap and metrics reads.
func TestWireCrashChurnRace(t *testing.T) {
	const (
		procs   = 8
		workers = 64
	)
	bc, hc, _, _ := newBinaryServer(t, tsserve.ServerConfig{SessionTTL: 40 * time.Millisecond},
		tsspace.WithAlgorithm("collect"), tsspace.WithProcs(procs))

	var (
		mu      sync.Mutex
		churnTS []tsspace.Timestamp
		crashed int
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()

			// Even workers speak wire v2, odd workers wire v3; both lease
			// from the same table.
			var sess tsspace.SessionAPI
			var err error
			if w%2 == 0 {
				sess, err = hc.Attach(ctx)
			} else {
				sess, err = bc.Attach(ctx)
			}
			if err != nil {
				t.Errorf("worker %d attach: %v", w, err)
				return
			}
			t1, err := sess.GetTS(ctx)
			if err != nil {
				t.Errorf("worker %d getTS: %v", w, err)
				return
			}
			t2, err := sess.GetTS(ctx)
			if err != nil {
				t.Errorf("worker %d second getTS: %v", w, err)
				return
			}
			// A worker's own stream is sequential, so its two timestamps
			// must be ordered whatever the interleaving around it.
			if before, err := sess.Compare(ctx, t1, t2); err != nil || !before {
				t.Errorf("worker %d: Compare(t1, t2) = %v, %v, want true", w, before, err)
			}
			mu.Lock()
			churnTS = append(churnTS, t1, t2)
			mu.Unlock()

			// Half the workers crash: walk away without Detach, leaving the
			// lease for the reaper.
			if w%4 < 2 {
				mu.Lock()
				crashed++
				mu.Unlock()
				return
			}
			if err := sess.Detach(); err != nil {
				t.Errorf("worker %d detach: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
	if crashed == 0 {
		t.Fatal("no worker crashed; the churn exercised nothing")
	}

	// Every abandoned lease must be reclaimed — by the TTL reaper, or by
	// the server-side conn cleanup when the GC finalizes an abandoned
	// client conn and closes its socket first — and the table must drain
	// completely. Poll: the last crashes may still be inside their TTL
	// window.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var m tsserve.Metrics
	for deadline := time.Now().Add(10 * time.Second); ; {
		var err error
		if m, err = hc.Metrics(ctx); err != nil {
			t.Fatal(err)
		}
		if m.ReapedSessions+m.CrashReclaimed >= uint64(crashed) && m.WireSessions == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("table never drained: %d reaped + %d crash-reclaimed of %d crashed, %d wire sessions live",
				m.ReapedSessions, m.CrashReclaimed, crashed, m.WireSessions)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Exactly the abandoned leases in the common case; a cleanly-detaching
	// worker descheduled past the TTL can legitimately add to the count,
	// so only the lower bound (the poll above) is asserted.
	t.Logf("churn: %d workers, %d crashed, %d reaped, %d crash-reclaimed",
		workers, crashed, m.ReapedSessions, m.CrashReclaimed)

	// Every pid is free again: attaching the full namespace concurrently
	// succeeds. Each lease takes its timestamp immediately and detaches,
	// staying well inside the TTL.
	post := make([]tsspace.Timestamp, procs)
	errs := make([]error, procs)
	var postWG sync.WaitGroup
	for i := 0; i < procs; i++ {
		postWG.Add(1)
		go func(i int) {
			defer postWG.Done()
			sess, err := hc.Attach(ctx)
			if err != nil {
				errs[i] = err
				return
			}
			defer sess.Detach()
			post[i], errs[i] = sess.GetTS(ctx)
		}(i)
	}
	postWG.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("post-churn lease %d: %v", i, err)
		}
	}

	// Happens-before across the crashes: every churn-phase getTS completed
	// before any post-churn call was invoked, reaped pids included.
	for _, pre := range churnTS {
		for i, p := range post {
			if before, err := hc.Compare(ctx, pre, p); err != nil || !before {
				t.Errorf("Compare(pre=%v, post[%d]=%v) = %v, %v across reaped lease", pre, i, p, before, err)
			}
		}
	}
}
