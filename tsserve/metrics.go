package tsserve

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"tsspace/internal/obs"
)

// serverMetrics is the server's half of the observability core: one
// obs.Registry holding every counter, gauge and histogram the server
// publishes, plus the flight recorder. The JSON /metrics body and the
// Prometheus exposition are both rendered from this registry — there is
// no second set of books. Two kinds of series live here:
//
//   - owned: the wire-layer counters (batches, reaped sessions, binary
//     frame/byte counts, rejected frames) and the per-endpoint latency
//     histograms are allocated here and written by the handlers; this
//     struct is their only bookkeeping location.
//   - derived: everything the SDK object already counts (calls,
//     attaches, active sessions, register-space totals) and the session
//     table's sizes are sampled at scrape time via CounterFunc /
//     GaugeFunc, so the object's own atomics stay the single source of
//     truth.
type serverMetrics struct {
	reg  *obs.Registry
	ring *obs.Ring

	// Owned wire-layer counters: this struct is where these live.
	batches *obs.Counter
	reaped  *obs.Counter
	// crashReclaimed counts leases reclaimed because their binary
	// connection closed while still attached (client crash, disconnect,
	// or a garbage-collected abandoned client conn) — the reaper's
	// sibling channel for returning pids to the pool.
	crashReclaimed *obs.Counter
	binFrames      *obs.Counter
	binBytesIn     *obs.Counter
	binBytesOut    *obs.Counter
	// Rejection counters: frames over MaxBinaryFrame, connections whose
	// first bytes were not the wire-v3 magic, session-scoped requests
	// against an id that is not (or no longer) leased, and
	// namespace-scoped requests against a name that is not (or no
	// longer) provisioned — the last two deliberately separate
	// families, so a namespace typo never masquerades as a reaped
	// session.
	oversizedFrames   *obs.Counter
	badMagicConns     *obs.Counter
	unknownSessions   *obs.Counter
	unknownNamespaces *obs.Counter

	// lat holds the per-endpoint latency histograms, keyed by the
	// /metrics JSON latency keys; the same histograms render to
	// Prometheus as tsserve_<key>_latency_ns families.
	lat map[string]*obs.Histogram
}

// latencyEndpoints are the instrumented endpoints, in the order their
// Prometheus families register. The keys double as JSON latency keys.
var latencyEndpoints = []string{"attach", "getts", "compare", "binary_getts", "binary_compare"}

// newServerMetrics builds the registry for s. Registration happens once
// at construction; everything the request paths touch afterwards is a
// plain atomic on the returned handles.
func newServerMetrics(s *Server) *serverMetrics {
	r := obs.NewRegistry()
	m := &serverMetrics{
		reg:  r,
		ring: obs.NewRing(obs.DefaultRingSize),

		batches:        r.Counter("tsserve_batches_total", "Completed getTS batches (HTTP and binary)."),
		reaped:         r.Counter("tsserve_reaped_sessions_total", "Idle wire sessions detached by the TTL reaper."),
		crashReclaimed: r.Counter("tsserve_crash_reclaimed_sessions_total", "Leases reclaimed because their binary connection closed while attached."),

		binFrames:   r.Counter("tsserve_binary_frames_total", "Wire-v3 request frames processed."),
		binBytesIn:  r.Counter("tsserve_binary_bytes_in_total", "Wire-v3 bytes read, framing included."),
		binBytesOut: r.Counter("tsserve_binary_bytes_out_total", "Wire-v3 bytes written, framing included."),

		oversizedFrames:   r.Counter("tsserve_rejected_frames_oversized_total", "Wire-v3 frames rejected for exceeding the size cap."),
		badMagicConns:     r.Counter("tsserve_rejected_conns_bad_magic_total", "Binary connections dropped for a bad magic prefix."),
		unknownSessions:   r.Counter("tsserve_unknown_sessions_total", "Session-scoped requests against an unknown or reaped session id."),
		unknownNamespaces: r.Counter("tsserve_unknown_namespaces_total", "Namespace-scoped requests against an unprovisioned or deprovisioned namespace."),

		lat: make(map[string]*obs.Histogram, len(latencyEndpoints)),
	}
	for _, ep := range latencyEndpoints {
		m.lat[ep] = r.Histogram("tsserve_"+ep+"_latency_ns",
			"Server-side latency of the "+ep+" endpoint, nanoseconds.", nil)
	}

	// Derived series: sampled from the SDK objects and the session table
	// at scrape time. The objects' counters are the bookkeeping; these
	// closures only read them. The unlabeled tsserve_* families keep
	// their pre-broker meaning — the default namespace's object — so
	// dashboards built against a single-object daemon read unchanged.
	r.CounterFunc("tsserve_calls_total", "Timestamps issued by the default namespace's object (getTS calls).",
		func() float64 { return float64(s.defaultNS.obj.Stats().Calls) })
	r.CounterFunc("tsserve_attaches_total", "Sessions handed out by the default namespace's object, wire and in-process.",
		func() float64 { return float64(s.defaultNS.obj.Stats().Attaches) })
	r.GaugeFunc("tsserve_active_sessions", "Currently attached SDK sessions on the default namespace.",
		func() float64 { return float64(s.defaultNS.obj.Stats().ActiveSessions) })
	r.GaugeFunc("tsserve_wire_sessions", "Live wire leases, HTTP and binary, all namespaces.",
		func() float64 { wire, _ := s.sessionCounts(); return float64(wire) })
	r.GaugeFunc("tsserve_binary_sessions", "Live wire leases attached over the binary transport, all namespaces.",
		func() float64 { _, bin := s.sessionCounts(); return float64(bin) })
	r.GaugeFunc("tsserve_uptime_seconds", "Seconds since the server was constructed.",
		func() float64 { return time.Since(s.start).Seconds() })

	// Per-namespace series, one sample per provisioned namespace labeled
	// namespace="...". Sampled over the live namespace table at scrape
	// time, so a PUT /ns/{name} shows up on the very next scrape with no
	// re-registration.
	r.GaugeVecFunc("tsserve_ns_sessions", "Live wire leases per namespace.", "namespace",
		func() []obs.Sample {
			return s.sampleNamespaces(func(ns *namespace) (float64, bool) { return float64(ns.active.Load()), true })
		})
	r.CounterVecFunc("tsserve_ns_calls_total", "Timestamps issued per namespace.", "namespace",
		func() []obs.Sample {
			return s.sampleNamespaces(func(ns *namespace) (float64, bool) { return float64(ns.obj.Stats().Calls), true })
		})
	r.CounterVecFunc("tsserve_ns_reaped_total", "Idle wire sessions detached by the TTL reaper, per namespace.", "namespace",
		func() []obs.Sample {
			return s.sampleNamespaces(func(ns *namespace) (float64, bool) { return float64(ns.reaped.Load()), true })
		})
	r.CounterVecFunc("tsserve_ns_quota_rejections_total", "Attaches rejected by the per-namespace session quota.", "namespace",
		func() []obs.Sample {
			return s.sampleNamespaces(func(ns *namespace) (float64, bool) { return float64(ns.quotaRejections.Load()), true })
		})

	// Register-space metering, the paper's live space measure, labeled by
	// namespace. The budget is always known; the used/read/write samples
	// exist only for namespaces that meter (they would read as constant
	// zero otherwise and invite bogus dashboards).
	r.GaugeVecFunc("tsspace_registers_total", "Allocated registers (the space budget), per namespace.", "namespace",
		func() []obs.Sample {
			return s.sampleNamespaces(func(ns *namespace) (float64, bool) {
				t, _ := ns.obj.SpaceTotals()
				return float64(t.Registers), true
			})
		})
	r.GaugeVecFunc("tsspace_registers_used", "Distinct registers written — the paper's used-register count — per metered namespace.", "namespace",
		func() []obs.Sample {
			return s.sampleNamespaces(func(ns *namespace) (float64, bool) {
				t, metered := ns.obj.SpaceTotals()
				return float64(t.Written), metered
			})
		})
	r.CounterVecFunc("tsspace_register_reads_total", "Register read operations per metered namespace.", "namespace",
		func() []obs.Sample {
			return s.sampleNamespaces(func(ns *namespace) (float64, bool) {
				t, metered := ns.obj.SpaceTotals()
				return float64(t.Reads), metered
			})
		})
	r.CounterVecFunc("tsspace_register_writes_total", "Register write operations per metered namespace.", "namespace",
		func() []obs.Sample {
			return s.sampleNamespaces(func(ns *namespace) (float64, bool) {
				t, metered := ns.obj.SpaceTotals()
				return float64(t.Writes), metered
			})
		})
	return m
}

// sampleNamespaces renders one labeled sample per live namespace, default
// first then the rest in name order (namespaceList's canonical order, so
// repeated scrapes diff cleanly). sample returns (value, include); a
// false include drops the namespace from this family — how the metered-
// only register series skip unmetered namespaces.
func (s *Server) sampleNamespaces(sample func(*namespace) (float64, bool)) []obs.Sample {
	nss := s.namespaceList()
	out := make([]obs.Sample, 0, len(nss))
	for _, ns := range nss {
		if v, ok := sample(ns); ok {
			out = append(out, obs.Sample{Label: ns.name, Value: v})
		}
	}
	return out
}

// sessionCounts sizes the wire session table: total live leases and the
// binary-attached subset. Scrape-path only.
func (s *Server) sessionCounts() (wire, binary int) {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	for _, ws := range s.sessions {
		wire++
		if ws.binary {
			binary++
		}
	}
	return wire, binary
}

// MetricsSnapshot assembles the JSON /metrics body from the same
// registry handles and SDK counters the Prometheus exposition samples —
// the two endpoints are two renderings of one set of books.
func (s *Server) MetricsSnapshot() Metrics {
	st := s.defaultNS.obj.Stats()
	uptime := time.Since(s.start).Seconds()
	wire, binSessions := s.sessionCounts()
	m := Metrics{
		Algorithm:         s.defaultNS.obj.Algorithm(),
		Procs:             s.defaultNS.obj.Procs(),
		Calls:             st.Calls,
		Batches:           s.met.batches.Value(),
		Attaches:          st.Attaches,
		ActiveSessions:    st.ActiveSessions,
		WireSessions:      wire,
		BinarySessions:    binSessions,
		ReapedSessions:    s.met.reaped.Value(),
		CrashReclaimed:    s.met.crashReclaimed.Value(),
		BinaryFrames:      s.met.binFrames.Value(),
		BinaryBytesIn:     s.met.binBytesIn.Value(),
		BinaryBytesOut:    s.met.binBytesOut.Value(),
		OversizedFrames:   s.met.oversizedFrames.Value(),
		BadMagicConns:     s.met.badMagicConns.Value(),
		UnknownSessions:   s.met.unknownSessions.Value(),
		UnknownNamespaces: s.met.unknownNamespaces.Value(),
		UptimeSeconds:     uptime,
	}
	if uptime > 0 {
		m.CallsPerSecond = float64(st.Calls) / uptime
	}
	if t, metered := s.defaultNS.obj.SpaceTotals(); metered {
		m.Space = &Space{Registers: t.Registers, Written: t.Written, Reads: t.Reads, Writes: t.Writes}
	}
	// Per-namespace section, same sources and order as the Prometheus
	// tsserve_ns_* / tsspace_registers* vec families — the two /metrics
	// views stay two renderings of one set of books.
	for _, ns := range s.namespaceList() {
		nst := ns.obj.Stats()
		nm := NamespaceMetrics{
			Name:            ns.name,
			Algorithm:       ns.obj.Algorithm(),
			Procs:           ns.obj.Procs(),
			OneShot:         ns.obj.OneShot(),
			MaxSessions:     ns.maxSessions,
			Calls:           nst.Calls,
			WireSessions:    ns.active.Load(),
			ReapedSessions:  ns.reaped.Load(),
			QuotaRejections: ns.quotaRejections.Load(),
		}
		if t, metered := ns.obj.SpaceTotals(); metered {
			nm.Space = &Space{Registers: t.Registers, Written: t.Written, Reads: t.Reads, Writes: t.Writes}
		}
		m.Namespaces = append(m.Namespaces, nm)
	}
	m.Latency = make(map[string]Latency, len(s.met.lat))
	for endpoint, h := range s.met.lat {
		if h.Count() == 0 {
			continue
		}
		d := h.Summarize()
		m.Latency[endpoint] = Latency{
			Count: d.Count, MeanNs: d.Mean,
			P50Ns: d.P50, P90Ns: d.P90, P99Ns: d.P99, P999Ns: d.P999, MaxNs: d.Max,
		}
	}
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.MetricsSnapshot())
}

// handlePrometheus is GET /metrics/prometheus: the registry rendered in
// the Prometheus text exposition format.
func (s *Server) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.TextContentType)
	_ = s.met.reg.WritePrometheus(w)
}

// EventsHandler returns the flight-recorder dump handler (GET
// /debug/events on the daemon's debug listener, also mountable by
// embedders): the most recent events as JSON lines, oldest first. Each
// line carries the event's sequence number, monotonic nanosecond
// timestamp, kind, 16-hex-digit session id (empty when the event has
// none), pid (-1 when none) and kind-specific detail.
func (s *Server) EventsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		events := make([]obs.Event, s.met.ring.Cap())
		n := s.met.ring.Snapshot(events)
		w.Header().Set("Content-Type", "application/x-ndjson")
		for _, e := range events[:n] {
			sess := ""
			if e.Session != 0 {
				sess = fmt.Sprintf("%016x", e.Session)
			}
			line := marshalEvent(e, sess)
			_, _ = w.Write(append(line, '\n'))
		}
	})
}

// marshalEvent renders one flight-recorder event as a JSON object. The
// fields are assembled by hand so kinds render as their names and the
// session id as the wire-format hex string.
func marshalEvent(e obs.Event, sess string) []byte {
	b := make([]byte, 0, 128)
	b = append(b, `{"seq":`...)
	b = strconv.AppendUint(b, e.Seq, 10)
	b = append(b, `,"t_ns":`...)
	b = strconv.AppendInt(b, e.TimeNs, 10)
	b = append(b, `,"kind":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","session":"`...)
	b = append(b, sess...)
	b = append(b, `","pid":`...)
	b = strconv.AppendInt(b, int64(e.Pid), 10)
	b = append(b, `,"ns":`...)
	b = strconv.AppendUint(b, uint64(e.NS), 10)
	b = append(b, `,"detail":`...)
	b = strconv.AppendInt(b, e.Detail, 10)
	b = append(b, '}')
	return b
}
