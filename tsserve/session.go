package tsserve

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"tsspace"
	"tsspace/internal/obs"
)

// Wire v2: session-scoped endpoints. A remote caller attaches once,
// pipelines any number of session-scoped batches over the same lease, and
// detaches explicitly — the SDK's lease/churn semantics over HTTP instead
// of one hidden attach per batch:
//
//	POST   /session               → {"session_id": ..., "pid": p, "idle_ttl_ms": t}
//	POST   /session/{id}/getts    {"count": k} → {"pid": p, "timestamps": [...]}
//	DELETE /session/{id}          → {"calls": c}
//
// A server-side session whose lease sits idle longer than the configured
// TTL is reaped (detached and its pid recycled), so abandoned remote
// clients cannot pin paper-processes forever; a request with a reaped or
// unknown id gets 404/unknown_session, which the Go client maps to
// tsspace.ErrDetached.

// AttachResponse is the body of POST /session and POST
// /ns/{name}/session: a leased server-side session, bound into the
// named namespace ("default" on the un-prefixed route). The lease is
// renewed by every session-scoped request; after IdleTTLMs without one
// it may be reaped.
type AttachResponse struct {
	SessionID string `json:"session_id"`
	Namespace string `json:"namespace"`
	Pid       int    `json:"pid"`
	IdleTTLMs int64  `json:"idle_ttl_ms"`
}

// DetachResponse is the body of DELETE /session/{id}. Calls is the number
// of timestamps the session issued over its lifetime.
type DetachResponse struct {
	Calls int `json:"calls"`
}

// wireSession is one leased SDK session addressable over the wire — by
// HTTP and binary clients alike, since both protocols share this table.
type wireSession struct {
	id string
	// idNum is the id's numeric value (the same 8 random bytes id
	// hex-encodes), the form the flight recorder stores per event.
	idNum uint64
	sess  *tsspace.Session
	// ns is the namespace the lease is bound into (the broker released
	// its quota slot when the session leaves the table). Set at
	// register time, never changed.
	ns *namespace
	// binary marks a lease attached over the wire-v3 transport, for the
	// /metrics session split.
	binary bool
	// mu serializes session-scoped batches: the SDK session is one logical
	// client, so concurrent HTTP requests against the same id queue here
	// instead of racing the sequential operation stream.
	mu   sync.Mutex
	last atomic.Int64 // unix nanos of the last completed request; drives reaping
}

// object resolves the Object the lease is bound into — the
// namespace-routing step on the batch hot path of both transports.
// Annotated as a tslint hotpath root so the analyzer guards it.
//
//tslint:hotpath
func (ws *wireSession) object() *tsspace.Object { return ws.ns.obj }

// newSessionID returns a 16-hex-digit random id, both as the wire
// string and as its numeric value (for the flight recorder). Ids are
// capability-ish tokens: unguessable enough that one client cannot
// plausibly stumble into another's lease on a shared daemon.
func newSessionID() (string, uint64) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("tsserve: crypto/rand failed: %v", err))
	}
	return hex.EncodeToString(b[:]), binary.BigEndian.Uint64(b[:])
}

// sessionIDNum parses a wire session id back to its numeric form for
// the flight recorder, so error events name the id the caller asked
// for. Malformed ids record as zero.
func sessionIDNum(id string) uint64 {
	var b [8]byte
	if len(id) != 16 {
		return 0
	}
	if _, err := hex.Decode(b[:], []byte(id)); err != nil {
		return 0
	}
	return binary.BigEndian.Uint64(b[:])
}

// register stores a freshly attached session bound into ns (whose
// quota slot the caller already reserved), records the attach in the
// flight recorder, and returns the wire form. binary marks leases
// attached over the wire-v3 transport.
func (s *Server) register(ns *namespace, sess *tsspace.Session, binary bool) *wireSession {
	id, idNum := newSessionID()
	ws := &wireSession{id: id, idNum: idNum, sess: sess, ns: ns, binary: binary}
	ws.last.Store(time.Now().UnixNano())
	s.sessMu.Lock()
	s.sessions[ws.id] = ws
	s.sessMu.Unlock()
	s.met.ring.RecordNS(obs.EventAttach, ns.id, ws.idNum, int32(sess.Pid()), 0)
	return ws
}

// lookupIn resolves a session id addressed through ns; the boolean is
// false for unknown (or already reaped/detached) ids AND for ids bound
// into a different namespace — a capability presented on the wrong
// namespace's routes is indistinguishable from an unknown one, which
// is what keeps namespaces isolated.
func (s *Server) lookupIn(ns *namespace, id string) (*wireSession, bool) {
	s.sessMu.Lock()
	ws, ok := s.sessions[id]
	s.sessMu.Unlock()
	if !ok || ws.ns != ns {
		return nil, false
	}
	return ws, ok
}

// remove deletes a session id regardless of namespace (the binary
// transport and connection cleanup address leases purely by
// capability), releasing its quota slot. The boolean is false if it
// was not present.
func (s *Server) remove(id string) (*wireSession, bool) {
	s.sessMu.Lock()
	ws, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
	}
	s.sessMu.Unlock()
	if ok {
		ws.ns.release()
	}
	return ws, ok
}

// removeIn is remove constrained to ns, for the namespace-scoped HTTP
// detach: an id bound elsewhere reads as unknown.
func (s *Server) removeIn(ns *namespace, id string) (*wireSession, bool) {
	s.sessMu.Lock()
	ws, ok := s.sessions[id]
	if ok && ws.ns != ns {
		ws, ok = nil, false
	}
	if ok {
		delete(s.sessions, id)
	}
	s.sessMu.Unlock()
	if ok {
		ws.ns.release()
	}
	return ws, ok
}

// reapLoop detaches sessions whose lease has been idle past the TTL. It
// runs until Close.
func (s *Server) reapLoop() {
	interval := s.sessionTTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case now := <-t.C:
			s.reapIdle(now)
		}
	}
}

// reapIdle detaches every session idle at now, counting them in the
// metrics. A session is idle only when no request is in flight on it
// (TryLock) AND its last activity stamp — renewed at batch start and
// end — is past the TTL, so a slow batch longer than the TTL is never
// yanked and never costs the client its lease.
func (s *Server) reapIdle(now time.Time) {
	cutoff := now.Add(-s.sessionTTL).UnixNano()
	var idle []*wireSession
	s.sessMu.Lock()
	for id, ws := range s.sessions {
		if ws.last.Load() >= cutoff {
			continue
		}
		if !ws.mu.TryLock() {
			continue // batch in flight: not idle, try again next tick
		}
		delete(s.sessions, id)
		idle = append(idle, ws)
	}
	s.sessMu.Unlock()
	for _, ws := range idle {
		calls := ws.sess.Calls()
		pid := ws.sess.Pid()
		_ = ws.sess.Detach()
		ws.mu.Unlock()
		ws.ns.release()
		ws.ns.reaped.Add(1)
		s.met.reaped.Inc()
		s.met.ring.RecordNS(obs.EventReap, ws.ns.id, ws.idNum, int32(pid), int64(calls))
	}
}

// Close stops the idle reaper, shuts the binary listeners and
// connections (after a short grace for in-flight frames), detaches
// every live wire session in every namespace (recycling their pids),
// and closes every provisioned namespace's Object. It does not close
// the default namespace's object (the caller owns it) and is
// idempotent. Close the server before that object on shutdown.
func (s *Server) Close() error {
	s.stopOnce.Do(func() { close(s.stop) })
	s.binCancel()
	s.closeBinary()
	s.sessMu.Lock()
	live := make([]*wireSession, 0, len(s.sessions))
	for id, ws := range s.sessions {
		delete(s.sessions, id)
		live = append(live, ws)
	}
	s.sessMu.Unlock()
	for _, ws := range live {
		ws.mu.Lock()
		_ = ws.sess.Detach()
		ws.mu.Unlock()
		ws.ns.release()
	}
	s.nsMu.Lock()
	provisioned := s.namespaces
	s.namespaces = make(map[string]*namespace)
	s.nsMu.Unlock()
	for _, ns := range provisioned {
		if ns.owned {
			_ = ns.obj.Close()
		}
	}
	return nil
}

// handleAttach is POST /session and POST /ns/{name}/session: lease an
// SDK session in the resolved namespace for this caller. The quota
// slot is reserved before the Object attach, so a full namespace
// answers quota_exhausted immediately instead of queueing on the pid
// pool.
func (s *Server) handleAttach(w http.ResponseWriter, r *http.Request) {
	ns, ok := s.requestNS(w, r)
	if !ok {
		return
	}
	var req struct{} // attach takes no parameters; reject unknown fields
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	if !ns.reserve() {
		s.met.ring.RecordNS(obs.EventError, ns.id, 0, -1, int64(binCodeQuota))
		writeError(w, http.StatusTooManyRequests, CodeQuota,
			fmt.Sprintf("namespace %q: session quota %d exhausted", ns.name, ns.maxSessions))
		return
	}
	sess, err := ns.obj.Attach(r.Context())
	if err != nil {
		ns.release()
		s.writeSDKError(w, r, ns, err)
		return
	}
	ws := s.register(ns, sess, false)
	writeJSON(w, http.StatusOK, AttachResponse{
		SessionID: ws.id,
		Namespace: ns.name,
		Pid:       sess.Pid(),
		IdleTTLMs: s.sessionTTL.Milliseconds(),
	})
}

// handleSessionGetTS is POST /session/{id}/getts: one batch on the
// caller's leased session. Requests against the same id serialize, so a
// pipelining client sees the SDK's sequential-session semantics.
func (s *Server) handleSessionGetTS(w http.ResponseWriter, r *http.Request) {
	ns, ok := s.requestNS(w, r)
	if !ok {
		return
	}
	ws, ok := s.lookupIn(ns, r.PathValue("id"))
	if !ok {
		s.met.unknownSessions.Inc()
		s.met.ring.RecordNS(obs.EventError, ns.id, sessionIDNum(r.PathValue("id")), -1, int64(binCodeUnknownSession))
		writeError(w, http.StatusNotFound, CodeUnknownSession,
			fmt.Sprintf("unknown session %q (detached, reaped, or never attached)", r.PathValue("id")))
		return
	}
	var req GetTSRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	count := req.Count
	if count < 1 {
		count = 1
	}
	if count > s.maxBatch {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("count %d exceeds the batch cap %d", count, s.maxBatch))
		return
	}
	if ns.obj.OneShot() && count > 1 {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("a one-shot object issues one timestamp per process; ask for count 1, not %d", count))
		return
	}

	ws.mu.Lock()
	defer ws.mu.Unlock()
	ws.last.Store(time.Now().UnixNano()) // renew at start too: a long batch is not idle
	buf := make([]tsspace.Timestamp, count)
	n, err := ws.sess.GetTSBatch(r.Context(), buf)
	ws.last.Store(time.Now().UnixNano())
	if err != nil {
		// A short batch burns nothing the caller can recover over the wire:
		// report the failure (with how far the batch got) and let the
		// client retry on a fresh request.
		s.writeSDKError(w, r, ns, fmt.Errorf("timestamp %d/%d: %w", n+1, count, err))
		return
	}
	resp := GetTSResponse{Pid: ws.sess.Pid(), Timestamps: make([]TS, n)}
	for i := 0; i < n; i++ {
		resp.Timestamps[i] = FromTimestamp(buf[i])
	}
	s.met.batches.Inc()
	writeJSON(w, http.StatusOK, resp)
}

// handleDetach is DELETE /session/{id} (and its /ns/{name} form):
// return the lease explicitly.
func (s *Server) handleDetach(w http.ResponseWriter, r *http.Request) {
	ns, ok := s.requestNS(w, r)
	if !ok {
		return
	}
	ws, ok := s.removeIn(ns, r.PathValue("id"))
	if !ok {
		s.met.unknownSessions.Inc()
		s.met.ring.RecordNS(obs.EventError, ns.id, sessionIDNum(r.PathValue("id")), -1, int64(binCodeUnknownSession))
		writeError(w, http.StatusNotFound, CodeUnknownSession,
			fmt.Sprintf("unknown session %q (detached, reaped, or never attached)", r.PathValue("id")))
		return
	}
	ws.mu.Lock() // wait out a batch in flight, then release the pid
	calls := ws.sess.Calls()
	pid := ws.sess.Pid()
	_ = ws.sess.Detach()
	ws.mu.Unlock()
	s.met.ring.RecordNS(obs.EventDetach, ws.ns.id, ws.idNum, int32(pid), int64(calls))
	writeJSON(w, http.StatusOK, DetachResponse{Calls: calls})
}
