package tsserve

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"tsspace"
)

// FuzzBinaryFrame feeds the wire-v3 frame reader arbitrary byte streams:
// whatever the prefix claims, next must never panic, never hand back a
// frame past the size cap, never allocate past it, and fail only with the
// codec's own vocabulary (clean EOF at a boundary, unexpected EOF inside
// a frame, or the two framing violations).
func FuzzBinaryFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, frameAttach})                            // minimal well-formed frame
	f.Add([]byte{0, 0, 0, 0})                                         // empty frame: no type byte
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, frameGetTS})                 // oversized length claim
	f.Add([]byte{0, 0, 0, 9, frameGetTS, 1, 2})                       // truncated payload
	f.Add([]byte{0, 0})                                               // truncated length prefix
	f.Add([]byte{0, 0, 0, 2, frameCompare, 0x80})                     // truncated varint payload
	f.Add(append([]byte{0, 0, 0, 3, frameError, binCodeClosed}, 'x')) // error frame
	f.Add([]byte{0, 0, 16, 1, frameGetTSOK})                          // large claim, no bytes behind it

	f.Fuzz(func(t *testing.T, data []byte) {
		fr := frameReader{r: bytes.NewReader(data)}
		for {
			typ, payload, err := fr.next()
			if err != nil {
				switch {
				case errors.Is(err, io.EOF),
					errors.Is(err, io.ErrUnexpectedEOF),
					errors.Is(err, errFrameEmpty),
					errors.Is(err, errFrameTooLarge):
				default:
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			if len(payload) >= MaxBinaryFrame {
				t.Fatalf("frame of %d bytes escaped the %d cap", len(payload)+1, MaxBinaryFrame)
			}
			if cap(fr.buf) > MaxBinaryFrame {
				t.Fatalf("reader allocated %d bytes for a capped stream", cap(fr.buf))
			}
			_ = typ
			// Decoders downstream of next must hold the same no-panic bar.
			var dst [8]tsspace.Timestamp
			_, _, _ = decodeTimestamps(payload, dst[:])
			_ = decodeError(payload)
		}
	})
}

// FuzzBinaryTimestamps throws arbitrary bytes at the getts-response
// decoder: it must never panic, never report more timestamps than the
// caller's buffer holds, and reject non-minimal trailing garbage.
func FuzzBinaryTimestamps(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0})                               // pid 3, empty batch
	f.Add([]byte{3, 2, 2, 4, 0, 2})                   // pid 3, two deltas
	f.Add([]byte{3, 200})                             // batch claim past any buffer
	f.Add([]byte{3, 1, 0x80})                         // truncated zigzag varint
	f.Add([]byte{3, 1, 2, 2, 9})                      // trailing byte
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80}) // runaway uvarint

	f.Fuzz(func(t *testing.T, data []byte) {
		var dst [16]tsspace.Timestamp
		_, n, err := decodeTimestamps(data, dst[:])
		if err != nil {
			return
		}
		if n > len(dst) {
			t.Fatalf("decoded %d timestamps into a buffer of %d", n, len(dst))
		}
	})
}

// FuzzBinaryTimestampsRoundTrip drives the encoder with arbitrary batch
// shapes and checks decode(encode(x)) == x: the delta encoding must be
// lossless for any timestamps, not just the ascending streams real
// sessions produce.
func FuzzBinaryTimestampsRoundTrip(f *testing.F) {
	f.Add(uint16(0), uint8(0), int64(0), int64(0), int64(0), int64(0))
	f.Add(uint16(7), uint8(3), int64(5), int64(9), int64(1), int64(1))
	f.Add(uint16(65535), uint8(16), int64(-1), int64(1<<62), int64(-1<<40), int64(3))

	f.Fuzz(func(t *testing.T, pid uint16, count uint8, r0, t0, dr, dt int64) {
		n := int(count)%16 + 1
		in := make([]tsspace.Timestamp, n)
		rnd, turn := r0, t0
		for i := range in {
			in[i] = tsspace.Timestamp{Rnd: rnd, Turn: turn}
			rnd += dr
			turn += dt
		}
		p := appendTimestamps(nil, int(pid), in)
		out := make([]tsspace.Timestamp, n)
		gotPid, gotN, err := decodeTimestamps(p, out)
		if err != nil {
			t.Fatalf("decode(encode(%d ts)): %v", n, err)
		}
		if gotPid != int(pid) || gotN != n {
			t.Fatalf("roundtrip header: pid %d n %d, want %d %d", gotPid, gotN, pid, n)
		}
		for i := range in {
			if out[i] != in[i] {
				t.Fatalf("ts[%d] = %+v, want %+v", i, out[i], in[i])
			}
		}
	})
}
