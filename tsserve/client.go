package tsserve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"tsspace"
)

// ErrProtocol is wrapped when a daemon reply violates the wire
// contract (impossible counts, malformed payloads).
var ErrProtocol = errors.New("tsserve: protocol violation")

// defaultClient is the HTTP client every NewClient(url, nil) shares: a
// keep-alive transport tuned for session pipelining, so consecutive
// requests — and the many workers of a tsload run — reuse connections
// instead of paying a TCP handshake per call. The idle-connection caps
// cover worker counts well past the defaults (DefaultTransport allows only
// 2 idle connections per host, which collapses under even modest
// concurrency).
var defaultClient = sync.OnceValue(func() *http.Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 256
	tr.MaxIdleConnsPerHost = 64
	tr.IdleConnTimeout = 90 * time.Second
	return &http.Client{Transport: tr}
})

// Client is the Go client of a tsserved daemon. Batches and comparisons
// go over the wire exactly as any other client's would.
//
// A Client binds to one namespace. NewClient binds the default
// namespace (the daemon's constructor Object); Namespace derives a
// client bound to a provisioned one. The broker surface — Catalog,
// ProvisionNamespace, DeprovisionNamespace, Namespaces, Metrics — is
// daemon-global and ignores the binding.
type Client struct {
	base string
	hc   *http.Client
	// prefix scopes the session-plane paths: "" for the default
	// namespace, "/ns/{name}" for a bound one.
	prefix string
}

// NewClient returns a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8037"). hc may be nil for the package's shared
// keep-alive client (MaxIdleConnsPerHost 64 — enough connection reuse for
// that many concurrent workers); pass an explicit client to tune the
// transport further.
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = defaultClient()
	}
	return &Client{base: baseURL, hc: hc}
}

// BaseURL returns the daemon URL the client talks to.
func (c *Client) BaseURL() string { return c.base }

// Namespace derives a client bound to the named namespace: its Attach,
// GetTS and Compare calls route through /ns/{name}/... and its Health
// reports that namespace. The namespace must be provisioned (see
// ProvisionNamespace) or "default"; calls against an unprovisioned name
// fail with ErrUnknownNamespace. The derived client shares the
// transport.
func (c *Client) Namespace(name string) *Client {
	if name == "" || name == DefaultNamespace {
		return &Client{base: c.base, hc: c.hc}
	}
	return &Client{base: c.base, hc: c.hc, prefix: "/ns/" + name}
}

// scoped maps a session-plane path through the namespace binding.
func (c *Client) scoped(path string) string { return c.prefix + path }

// APIError is a non-2xx response from the daemon. Is maps the wire codes
// back to the SDK's typed errors, so errors.Is(err, tsspace.ErrExhausted)
// works across the network boundary.
type APIError struct {
	StatusCode int
	Code       string
	Message    string
}

// Error renders the failure.
func (e *APIError) Error() string {
	return fmt.Sprintf("tsserve: %s (%d %s)", e.Message, e.StatusCode, e.Code)
}

// Is reports whether the wire code corresponds to target.
func (e *APIError) Is(target error) bool {
	switch target {
	case tsspace.ErrExhausted:
		return e.Code == CodeExhausted
	case tsspace.ErrClosed:
		return e.Code == CodeClosed
	case tsspace.ErrDetached:
		return e.Code == CodeUnknownSession
	case ErrUnknownNamespace:
		return e.Code == CodeUnknownNamespace
	case ErrNamespaceExists:
		return e.Code == CodeNamespaceExists
	case ErrQuota:
		return e.Code == CodeQuota
	}
	return false
}

// Attach leases a server-side session (wire v2) and returns its handle.
// The lease pins one of the daemon's paper-processes until Detach — or
// until it sits idle past the daemon's TTL and is reaped, after which the
// handle's calls report tsspace.ErrDetached.
func (c *Client) Attach(ctx context.Context) (*RemoteSession, error) {
	var resp AttachResponse
	if err := c.post(ctx, c.scoped("/session"), struct{}{}, &resp); err != nil {
		return nil, err
	}
	return &RemoteSession{c: c, id: resp.SessionID, pid: resp.Pid}, nil
}

// RemoteSession is a wire-v2 session: the tsspace.SessionAPI semantics of
// a local Session — one leased paper-process, sequential batches, each
// timestamp happens-before the next — over HTTP. Like a local Session it
// models one logical client: its GetTS/GetTSBatch calls must be
// sequential (the server additionally serializes same-session requests,
// so a misbehaving caller degrades to queueing, never to corruption).
type RemoteSession struct {
	c        *Client
	id       string
	pid      int
	calls    atomic.Int64
	detached atomic.Bool
}

var _ tsspace.SessionAPI = (*RemoteSession)(nil)

// ID returns the wire session id (diagnostic).
func (s *RemoteSession) ID() string { return s.id }

// Pid returns the daemon-side paper-process id backing the lease.
func (s *RemoteSession) Pid() int { return s.pid }

// Calls returns the number of timestamps this handle has received.
func (s *RemoteSession) Calls() int { return int(s.calls.Load()) }

// GetTS requests one timestamp on the session's lease.
func (s *RemoteSession) GetTS(ctx context.Context) (tsspace.Timestamp, error) {
	var buf [1]tsspace.Timestamp
	if _, err := s.GetTSBatch(ctx, buf[:]); err != nil {
		return tsspace.Timestamp{}, err
	}
	return buf[0], nil
}

// GetTSBatch fills dst with one session-scoped pipelined batch: len(dst)
// timestamps issued back to back by the leased paper-process, each
// happens-before the next. An empty dst is a no-op.
func (s *RemoteSession) GetTSBatch(ctx context.Context, dst []tsspace.Timestamp) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	if s.detached.Load() {
		return 0, tsspace.ErrDetached
	}
	var resp GetTSResponse
	if err := s.c.post(ctx, s.c.scoped("/session/"+s.id+"/getts"), GetTSRequest{Count: len(dst)}, &resp); err != nil {
		return 0, err
	}
	if len(resp.Timestamps) > len(dst) {
		return 0, fmt.Errorf("%w: daemon returned %d timestamps for a batch of %d", ErrProtocol, len(resp.Timestamps), len(dst))
	}
	for i, ts := range resp.Timestamps {
		dst[i] = ts.Timestamp()
	}
	s.calls.Add(int64(len(resp.Timestamps)))
	return len(resp.Timestamps), nil
}

// Compare implements tsspace.SessionAPI with a /compare round trip.
func (s *RemoteSession) Compare(ctx context.Context, t1, t2 tsspace.Timestamp) (bool, error) {
	return s.c.Compare(ctx, t1, t2)
}

// Detach releases the server-side lease. A lease the daemon already
// reaped counts as detached, not as an error. Detach is idempotent.
func (s *RemoteSession) Detach() error {
	if !s.detached.CompareAndSwap(false, true) {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var resp DetachResponse
	err := s.c.del(ctx, s.c.scoped("/session/"+s.id), &resp)
	if err != nil {
		if apiErr, ok := err.(*APIError); ok && apiErr.Code == CodeUnknownSession {
			return nil // reaped (or raced another detach): the lease is gone either way
		}
		return err
	}
	return nil
}

// GetTS requests one batch of count timestamps (count < 1 means 1),
// returned in issue order: each happens-before the next.
//
// Deprecated: GetTS is the v1 single-request surface, kept as a thin shim
// over wire v2 (the daemon attaches a session, issues the batch, and
// detaches per call). Callers issuing more than one batch should Attach a
// RemoteSession and use GetTSBatch, which keeps the lease — and the
// paper-process identity — across batches.
func (c *Client) GetTS(ctx context.Context, count int) ([]tsspace.Timestamp, error) {
	var resp GetTSResponse
	if err := c.post(ctx, c.scoped("/getts"), GetTSRequest{Count: count}, &resp); err != nil {
		return nil, err
	}
	out := make([]tsspace.Timestamp, len(resp.Timestamps))
	for i, ts := range resp.Timestamps {
		out[i] = ts.Timestamp()
	}
	return out, nil
}

// Compare asks the daemon whether t1 is ordered before t2.
func (c *Client) Compare(ctx context.Context, t1, t2 tsspace.Timestamp) (bool, error) {
	var resp CompareResponse
	err := c.post(ctx, c.scoped("/compare"), CompareRequest{T1: FromTimestamp(t1), T2: FromTimestamp(t2)}, &resp)
	return resp.Before, err
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.get(ctx, c.scoped("/healthz"), &h)
	return h, err
}

// Metrics fetches /metrics. The body is daemon-global: it carries the
// per-namespace section regardless of the client's binding.
func (c *Client) Metrics(ctx context.Context) (Metrics, error) {
	var m Metrics
	err := c.get(ctx, "/metrics", &m)
	return m, err
}

// Catalog fetches GET /catalog: the daemon's registered algorithms, the
// broker's "what can be provisioned" surface.
func (c *Client) Catalog(ctx context.Context) ([]CatalogEntry, error) {
	var resp CatalogResponse
	if err := c.get(ctx, "/catalog", &resp); err != nil {
		return nil, err
	}
	return resp.Algorithms, nil
}

// Namespaces fetches GET /ns: every live namespace name, sorted,
// "default" included.
func (c *Client) Namespaces(ctx context.Context) ([]string, error) {
	var resp NamespaceList
	if err := c.get(ctx, "/ns", &resp); err != nil {
		return nil, err
	}
	return resp.Namespaces, nil
}

// ProvisionNamespace PUTs /ns/{name}: provision a named Object to bind
// sessions into (see Namespace). Re-provisioning an identical spec is
// idempotent (Created false in the response); a conflicting spec fails
// with ErrNamespaceExists, and the server's namespace cap with ErrQuota.
func (c *Client) ProvisionNamespace(ctx context.Context, name string, req ProvisionRequest) (ProvisionResponse, error) {
	var resp ProvisionResponse
	err := c.put(ctx, "/ns/"+name, req, &resp)
	return resp, err
}

// DeprovisionNamespace DELETEs /ns/{name}: force-detach the namespace's
// live leases and close its Object. Deleting an absent namespace fails
// with ErrUnknownNamespace.
func (c *Client) DeprovisionNamespace(ctx context.Context, name string) (DeprovisionResponse, error) {
	var resp DeprovisionResponse
	err := c.del(ctx, "/ns/"+name, &resp)
	return resp, err
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) put(ctx context.Context, path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) del(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var body ErrorBody
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			return &APIError{StatusCode: resp.StatusCode, Code: CodeInternal,
				Message: fmt.Sprintf("undecodable error body: %v", err)}
		}
		return &APIError{StatusCode: resp.StatusCode, Code: body.Code, Message: body.Error}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
