package tsserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"tsspace"
)

// Client is the Go client of a tsserved daemon. The zero HTTP client of
// NewClient is http.DefaultClient; batches and comparisons go over the
// wire exactly as any other client's would.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8037"). hc may be nil for http.DefaultClient.
func NewClient(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: baseURL, hc: hc}
}

// BaseURL returns the daemon URL the client talks to.
func (c *Client) BaseURL() string { return c.base }

// APIError is a non-2xx response from the daemon. Is maps the wire codes
// back to the SDK's typed errors, so errors.Is(err, tsspace.ErrExhausted)
// works across the network boundary.
type APIError struct {
	StatusCode int
	Code       string
	Message    string
}

// Error renders the failure.
func (e *APIError) Error() string {
	return fmt.Sprintf("tsserve: %s (%d %s)", e.Message, e.StatusCode, e.Code)
}

// Is reports whether the wire code corresponds to target.
func (e *APIError) Is(target error) bool {
	switch target {
	case tsspace.ErrExhausted:
		return e.Code == CodeExhausted
	case tsspace.ErrClosed:
		return e.Code == CodeClosed
	}
	return false
}

// GetTS requests one batch of count timestamps (count < 1 means 1),
// returned in issue order: each happens-before the next.
func (c *Client) GetTS(ctx context.Context, count int) ([]tsspace.Timestamp, error) {
	var resp GetTSResponse
	if err := c.post(ctx, "/getts", GetTSRequest{Count: count}, &resp); err != nil {
		return nil, err
	}
	out := make([]tsspace.Timestamp, len(resp.Timestamps))
	for i, ts := range resp.Timestamps {
		out[i] = ts.Timestamp()
	}
	return out, nil
}

// Compare asks the daemon whether t1 is ordered before t2.
func (c *Client) Compare(ctx context.Context, t1, t2 tsspace.Timestamp) (bool, error) {
	var resp CompareResponse
	err := c.post(ctx, "/compare", CompareRequest{T1: FromTimestamp(t1), T2: FromTimestamp(t2)}, &resp)
	return resp.Before, err
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.get(ctx, "/healthz", &h)
	return h, err
}

// Metrics fetches /metrics.
func (c *Client) Metrics(ctx context.Context) (Metrics, error) {
	var m Metrics
	err := c.get(ctx, "/metrics", &m)
	return m, err
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var body ErrorBody
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			return &APIError{StatusCode: resp.StatusCode, Code: CodeInternal,
				Message: fmt.Sprintf("undecodable error body: %v", err)}
		}
		return &APIError{StatusCode: resp.StatusCode, Code: body.Code, Message: body.Error}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
