package tsserve

// The namespace broker: the subsystem that turns one daemon into a
// timestamp service broker serving many independent Objects. The shape
// is the Open Service Broker lifecycle — discover what can be served,
// provision a named instance, bind into it, release it:
//
//	GET    /catalog      → the registered algorithms (name, summary,
//	                       one-shot-ness, minimum procs)
//	GET    /ns           → the provisioned namespace names
//	PUT    /ns/{name}    → provision a named Object (algorithm, procs,
//	                       session quota); idempotent for an identical
//	                       spec, namespace_exists for a different one
//	DELETE /ns/{name}    → deprovision: force-detach its live leases,
//	                       close its Object; unknown_namespace if absent
//
// Binding is namespace-scoped session attach on both transports: the
// wire-v2 session endpoints replicated under /ns/{name}/..., and the
// wire-v3 attach_ns frame carrying the namespace name (binary.go).
// Every namespace keeps its own lease accounting — a session quota
// enforced at attach, per-namespace space/session/rejection series in
// both /metrics views, and a namespace id on every flight-recorder
// event — while all namespaces share one capability-addressed session
// table, so the per-frame hot path stays exactly as allocation-free as
// it was with one Object.
//
// The daemon's constructor Object is the "default" namespace: always
// present, never deprovisionable, unlimited quota, owned by the caller.
// Provisioned Objects are owned by the broker and closed on
// deprovision or server Close.

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"

	"tsspace"
	"tsspace/internal/obs"
)

// DefaultNamespace is the name under which the constructor's Object is
// always addressable. It cannot be provisioned or deprovisioned.
const DefaultNamespace = "default"

// Typed broker errors, mapped to wire codes by APIError.Is so
// errors.Is works across both transports.
var (
	// ErrNamespaceExists is returned when provisioning a name that is
	// already provisioned with a different spec (an identical spec is
	// idempotent and succeeds).
	ErrNamespaceExists = errors.New("tsserve: namespace already provisioned")
	// ErrUnknownNamespace is returned by namespace-scoped requests
	// against a name that was never provisioned or is already
	// deprovisioned.
	ErrUnknownNamespace = errors.New("tsserve: unknown namespace")
	// ErrQuota is returned when an attach would exceed the namespace's
	// session quota, or a provision the server's namespace cap.
	ErrQuota = errors.New("tsserve: quota exhausted")
)

// CatalogEntry is one algorithm in the GET /catalog body, sourced from
// the internal/timestamp registry via tsspace.Catalog().
type CatalogEntry struct {
	Name     string `json:"name"`
	Summary  string `json:"summary"`
	OneShot  bool   `json:"one_shot"`
	MinProcs int    `json:"min_procs"`
}

// CatalogResponse is the GET /catalog body.
type CatalogResponse struct {
	Algorithms []CatalogEntry `json:"algorithms"`
}

// NamespaceList is the GET /ns body: every live namespace name, the
// default included, sorted.
type NamespaceList struct {
	Namespaces []string `json:"namespaces"`
}

// ProvisionRequest is the PUT /ns/{name} body. Zero values inherit
// from the default namespace's Object, so `{}` provisions a sibling of
// the daemon's own configuration.
type ProvisionRequest struct {
	// Algorithm names a registry algorithm (see GET /catalog); empty
	// means the default namespace's algorithm.
	Algorithm string `json:"algorithm,omitempty"`
	// Procs is the namespace Object's paper-process count n — for a
	// one-shot algorithm also its total timestamp budget; values < 1
	// mean the default namespace's procs.
	Procs int `json:"procs,omitempty"`
	// MaxSessions caps concurrently held wire leases in this namespace
	// (both transports; 0 = unlimited). An attach beyond the cap is
	// rejected with quota_exhausted instead of queueing for a pid.
	MaxSessions int `json:"max_sessions,omitempty"`
	// Sharded selects the Object's sharded register layout.
	Sharded bool `json:"sharded,omitempty"`
	// Unmetered disables register metering. Metering defaults on so
	// the per-namespace space gauges (tsspace_registers_used{namespace=...})
	// report; opt out only for peak-throughput namespaces.
	Unmetered bool `json:"unmetered,omitempty"`
}

// ProvisionResponse is the PUT /ns/{name} body on success. Created is
// false when an identical spec was already provisioned (the idempotent
// re-PUT).
type ProvisionResponse struct {
	Name        string `json:"name"`
	Algorithm   string `json:"algorithm"`
	Procs       int    `json:"procs"`
	Registers   int    `json:"registers"`
	OneShot     bool   `json:"one_shot"`
	MaxSessions int    `json:"max_sessions,omitempty"`
	Created     bool   `json:"created"`
}

// DeprovisionResponse is the DELETE /ns/{name} body on success.
// ReleasedSessions counts the live leases force-detached.
type DeprovisionResponse struct {
	Name             string `json:"name"`
	ReleasedSessions int    `json:"released_sessions"`
}

// namespace is one named Object and its broker-side accounting. The
// default namespace wraps the constructor's Object; provisioned ones
// own theirs.
type namespace struct {
	name string
	// id tags this namespace's flight-recorder events (0 is the
	// default namespace; provisioned namespaces count up from 1).
	id      uint32
	obj     *tsspace.Object
	summary string
	// owned marks broker-provisioned Objects, closed on deprovision
	// and server Close; the default Object stays the caller's.
	owned bool

	// The provisioned spec, kept verbatim so an identical re-PUT is
	// recognized as idempotent.
	algorithm   string
	procs       int
	maxSessions int
	sharded     bool
	metered     bool

	// active counts live wire leases bound into this namespace; it is
	// the quota's book and the tsserve_ns_sessions gauge. reaped and
	// quotaRejections are this namespace's slices of the TTL-reap and
	// quota-rejection counters.
	active          atomic.Int64
	reaped          atomic.Uint64
	quotaRejections atomic.Uint64
}

// reserve claims one session slot, or reports quota exhaustion. The
// claim happens before the Object attach so a full namespace rejects
// immediately with a typed error instead of queueing on the pid pool.
//
//tslint:hotpath
func (n *namespace) reserve() bool {
	for {
		cur := n.active.Load()
		if n.maxSessions > 0 && cur >= int64(n.maxSessions) {
			n.quotaRejections.Add(1)
			return false
		}
		if n.active.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// release returns one session slot; every removal from the session
// table calls it exactly once.
//
//tslint:hotpath
func (n *namespace) release() { n.active.Add(-1) }

// validNamespaceName constrains names to [a-z0-9._-]{1,63}: safe in
// URL paths, wire frames and Prometheus label values without escaping.
func validNamespaceName(name string) bool {
	if len(name) == 0 || len(name) > 63 {
		return false
	}
	for i := 0; i < len(name); i++ {
		switch c := name[i]; {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// algorithmSummary resolves an algorithm's one-line catalog summary.
func algorithmSummary(alg string) string {
	for _, e := range tsspace.Catalog() {
		if e.Name == alg {
			return e.Summary
		}
	}
	return ""
}

// resolveNS maps a wire namespace name to its live namespace. The
// empty name (the un-prefixed wire-v2 routes and the wire-v3 attach
// frame) and "default" both resolve to the default namespace.
func (s *Server) resolveNS(name string) (*namespace, bool) {
	if name == "" || name == DefaultNamespace {
		return s.defaultNS, true
	}
	s.nsMu.RLock()
	ns, ok := s.namespaces[name]
	s.nsMu.RUnlock()
	return ns, ok
}

// requestNS resolves the {name} path value of a namespace-scoped HTTP
// request, answering unknown_namespace (and counting the rejection in
// its own family, distinct from unknown_session) when it fails.
func (s *Server) requestNS(w http.ResponseWriter, r *http.Request) (*namespace, bool) {
	name := r.PathValue("name")
	ns, ok := s.resolveNS(name)
	if !ok {
		s.rejectUnknownNamespace()
		writeError(w, http.StatusNotFound, CodeUnknownNamespace,
			fmt.Sprintf("unknown namespace %q (never provisioned, or already deprovisioned)", name))
		return nil, false
	}
	return ns, true
}

// rejectUnknownNamespace books a request against an unprovisioned
// name: its own counter and flight-recorder error event, so namespace
// typos never fold into the unknown-session family.
func (s *Server) rejectUnknownNamespace() {
	s.met.unknownNamespaces.Inc()
	s.met.ring.Record(obs.EventError, 0, -1, int64(binCodeUnknownNamespace))
}

// namespaceList snapshots every live namespace, default first, then
// provisioned sorted by name — the sample order of every
// namespace-labeled metric family and of the JSON namespaces section.
func (s *Server) namespaceList() []*namespace {
	s.nsMu.RLock()
	out := make([]*namespace, 0, len(s.namespaces)+1)
	out = append(out, s.defaultNS)
	for _, ns := range s.namespaces {
		out = append(out, ns)
	}
	s.nsMu.RUnlock()
	rest := out[1:]
	sort.Slice(rest, func(i, j int) bool { return rest[i].name < rest[j].name })
	return out
}

// handleCatalog is GET /catalog: the algorithm registry, the broker's
// "what can be provisioned" surface.
func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	all := tsspace.Catalog()
	resp := CatalogResponse{Algorithms: make([]CatalogEntry, len(all))}
	for i, e := range all {
		resp.Algorithms[i] = CatalogEntry{Name: e.Name, Summary: e.Summary, OneShot: e.OneShot, MinProcs: e.MinProcs}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleNamespaces is GET /ns: the live namespace names.
func (s *Server) handleNamespaces(w http.ResponseWriter, r *http.Request) {
	var names []string
	for _, ns := range s.namespaceList() {
		names = append(names, ns.name)
	}
	sort.Strings(names)
	writeJSON(w, http.StatusOK, NamespaceList{Namespaces: names})
}

// handleProvision is PUT /ns/{name}: create a named Object. An
// identical spec is idempotent (Created false); a conflicting one is
// namespace_exists; the server-wide namespace cap is quota_exhausted.
func (s *Server) handleProvision(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !validNamespaceName(name) {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			fmt.Sprintf("invalid namespace name %q (want [a-z0-9._-]{1,63})", name))
		return
	}
	var req ProvisionRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	if req.Algorithm == "" {
		req.Algorithm = s.defaultNS.obj.Algorithm()
	}
	if req.Procs < 1 {
		req.Procs = s.defaultNS.obj.Procs()
	}
	if req.MaxSessions < 0 {
		req.MaxSessions = 0
	}
	if name == DefaultNamespace {
		writeError(w, http.StatusConflict, CodeNamespaceExists,
			`the "default" namespace always exists and cannot be re-provisioned`)
		return
	}

	s.nsMu.Lock()
	if existing, ok := s.namespaces[name]; ok {
		same := existing.algorithm == req.Algorithm && existing.procs == req.Procs &&
			existing.maxSessions == req.MaxSessions && existing.sharded == req.Sharded &&
			existing.metered == !req.Unmetered
		s.nsMu.Unlock()
		if same {
			writeJSON(w, http.StatusOK, provisionResponse(existing, false))
			return
		}
		writeError(w, http.StatusConflict, CodeNamespaceExists,
			fmt.Sprintf("namespace %q already provisioned with a different spec", name))
		return
	}
	if len(s.namespaces) >= s.maxNamespaces {
		s.nsMu.Unlock()
		writeError(w, http.StatusTooManyRequests, CodeQuota,
			fmt.Sprintf("namespace cap %d reached", s.maxNamespaces))
		return
	}
	opts := []tsspace.Option{tsspace.WithAlgorithm(req.Algorithm), tsspace.WithProcs(req.Procs)}
	if req.Sharded {
		opts = append(opts, tsspace.WithSharded())
	}
	if !req.Unmetered {
		opts = append(opts, tsspace.WithMetering())
	}
	obj, err := tsspace.New(opts...)
	if err != nil {
		s.nsMu.Unlock()
		if errors.Is(err, tsspace.ErrUnknownAlgorithm) || errors.Is(err, tsspace.ErrBadOption) {
			writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	s.nsSeq++
	ns := &namespace{
		name: name, id: s.nsSeq, obj: obj, owned: true,
		summary:   algorithmSummary(req.Algorithm),
		algorithm: req.Algorithm, procs: req.Procs, maxSessions: req.MaxSessions,
		sharded: req.Sharded, metered: !req.Unmetered,
	}
	s.namespaces[name] = ns
	s.nsMu.Unlock()
	writeJSON(w, http.StatusOK, provisionResponse(ns, true))
}

func provisionResponse(ns *namespace, created bool) ProvisionResponse {
	return ProvisionResponse{
		Name: ns.name, Algorithm: ns.obj.Algorithm(), Procs: ns.obj.Procs(),
		Registers: ns.obj.Registers(), OneShot: ns.obj.OneShot(),
		MaxSessions: ns.maxSessions, Created: created,
	}
}

// handleDeprovision is DELETE /ns/{name}: drop the namespace,
// force-detach its live leases (recycling their pids), and close its
// Object. Deleting an absent name answers unknown_namespace — the
// typed signal that the namespace is already gone.
func (s *Server) handleDeprovision(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if name == DefaultNamespace {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			`the "default" namespace cannot be deprovisioned`)
		return
	}
	s.nsMu.Lock()
	ns, ok := s.namespaces[name]
	if ok {
		delete(s.namespaces, name)
	}
	s.nsMu.Unlock()
	if !ok {
		s.rejectUnknownNamespace()
		writeError(w, http.StatusNotFound, CodeUnknownNamespace,
			fmt.Sprintf("unknown namespace %q (never provisioned, or already deprovisioned)", name))
		return
	}
	released := s.dropNamespaceSessions(ns)
	_ = ns.obj.Close()
	writeJSON(w, http.StatusOK, DeprovisionResponse{Name: name, ReleasedSessions: released})
}

// dropNamespaceSessions force-detaches every live wire lease bound
// into ns, waiting out in-flight batches. Used by deprovision; Close
// handles all namespaces at once.
func (s *Server) dropNamespaceSessions(ns *namespace) int {
	var live []*wireSession
	s.sessMu.Lock()
	for id, ws := range s.sessions {
		if ws.ns == ns {
			delete(s.sessions, id)
			live = append(live, ws)
		}
	}
	s.sessMu.Unlock()
	for _, ws := range live {
		ws.mu.Lock() // wait out a batch in flight
		calls := ws.sess.Calls()
		pid := ws.sess.Pid()
		_ = ws.sess.Detach()
		ws.mu.Unlock()
		ns.release()
		s.met.ring.RecordNS(obs.EventDetach, ns.id, ws.idNum, int32(pid), int64(calls))
	}
	return len(live)
}
