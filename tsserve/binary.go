package tsserve

// Wire v3: a persistent-connection, length-prefixed binary protocol — the
// session semantics of wire v2 with the HTTP/JSON harness tax removed.
// E13 measured that tax at ~100× the algorithm (2.8µs/ts over HTTP/JSON at
// batch 256 vs 29ns/ts in process); v3 exists to close that gap, so the
// codec is built for a zero-allocation steady state: reusable buffers,
// varint/delta timestamp encoding, and frame reads that never allocate
// past a hard cap.
//
// A connection opens with the 4-byte magic "tsb3", then carries frames in
// both directions:
//
//	frame   := length(uint32, big-endian) type(byte) payload
//	length  counts type+payload, so 1 ≤ length ≤ MaxBinaryFrame
//
// Request frames (client → server) and their responses:
//
//	attach    []                        → attachOK    [id(16)][pid][ttl_ms]
//	attach_ns [len][name]               → attachNSOK  [id(16)][pid][ttl_ms]
//	getts     [id(16)][count]           → gettsOK     [pid][n][ts deltas]
//	detach    [id(16)]                  → detachOK    [calls]
//	compare   [r1][t1][r2][t2]          → compareOK   [before(byte)]
//	any       —                         → error       [code(byte)][message]
//
// attach_ns is attach into a named namespace (broker.go): the payload
// carries the namespace name (uvarint length + raw bytes) and the
// returned id binds the session into that namespace's Object. Sessions
// from either attach form are addressed identically afterwards — getts
// and detach frames carry only the capability id, so the steady-state
// path is byte-for-byte the same with or without namespaces.
//
// Bracketed integers are varints (unsigned for id-adjacent counts, zigzag
// for timestamp fields); session ids are the same 16-hex-digit
// capability-ish tokens wire v2 leases, carried as raw ASCII so both
// protocols address one session space. A getts response encodes its batch
// as first-pair-absolute, then per-field zigzag deltas — timestamps issued
// back to back by one paper-process mostly share their rnd, so a 256-batch
// rides in a few hundred bytes instead of ~10KB of JSON.
//
// Responses come back in request order on each connection; a client may
// pipeline. Because a session models one logical client anyway (its
// operation stream is sequential), the client side binds one session to
// one pooled connection and the server processes each connection serially.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"tsspace"
)

// BinaryMagic opens every wire-v3 connection: the client writes it once
// after dialing, before the first frame.
const BinaryMagic = "tsb3"

// MaxBinaryFrame caps the length prefix of one frame (type + payload). A
// reader rejects larger claims before allocating, so a malformed or
// hostile prefix cannot balloon memory; at ~20 bytes per encoded
// timestamp the cap still clears batches far past the server's default
// 1024-batch limit.
const MaxBinaryFrame = 1 << 20

// binIDLen is the wire size of a session id: wire v2's 16-hex-digit
// token, carried verbatim.
const binIDLen = 16

// Frame types. Request types run from 0x01; response types are the
// request type with the high bit set; frameError answers any request.
const (
	frameAttach     byte = 0x01
	frameGetTS      byte = 0x02
	frameDetach     byte = 0x03
	frameCompare    byte = 0x04
	frameAttachNS   byte = 0x05
	frameAttachOK   byte = 0x81
	frameGetTSOK    byte = 0x82
	frameDetachOK   byte = 0x83
	frameCompareOK  byte = 0x84
	frameAttachNSOK byte = 0x85
	frameError      byte = 0xFF
)

// Binary error codes, one byte each on the wire. They are the wire-v2
// string codes in fixed form, so both protocols map to the same typed SDK
// errors client-side.
const (
	binCodeBadRequest       byte = 1
	binCodeExhausted        byte = 2
	binCodeClosed           byte = 3
	binCodeInternal         byte = 4
	binCodeUnknownSession   byte = 5
	binCodeUnknownNamespace byte = 6
	binCodeQuota            byte = 7
)

// binCodeString maps a wire byte back to the shared string code; unknown
// bytes degrade to CodeInternal rather than failing the decode.
func binCodeString(b byte) string {
	switch b {
	case binCodeBadRequest:
		return CodeBadRequest
	case binCodeExhausted:
		return CodeExhausted
	case binCodeClosed:
		return CodeClosed
	case binCodeUnknownSession:
		return CodeUnknownSession
	case binCodeUnknownNamespace:
		return CodeUnknownNamespace
	case binCodeQuota:
		return CodeQuota
	}
	return CodeInternal
}

// Codec errors. errFrameTooLarge poisons the stream (the bytes after a
// rejected prefix cannot be re-framed), so both sides close the
// connection on it; payload-level errors keep the connection.
var (
	errFrameTooLarge = errors.New("tsserve: binary frame exceeds size cap")
	errFrameEmpty    = errors.New("tsserve: binary frame has no type byte")
	errTruncated     = errors.New("tsserve: truncated binary payload")
)

// beginFrame reserves a length prefix and writes the type byte; endFrame
// patches the prefix once the payload is appended. start is beginFrame's
// len(dst), so frames can stack in one buffer.
func beginFrame(dst []byte, typ byte) []byte {
	return append(dst, 0, 0, 0, 0, typ)
}

func endFrame(dst []byte, start int) []byte {
	binary.BigEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// frameReader reads length-prefixed frames from r into a reused buffer.
// The payload returned by next is valid until the following call. The
// header scratch lives in the struct so next stays allocation-free (a
// local array would escape through the io.Reader interface call).
type frameReader struct {
	r   io.Reader
	hdr [4]byte
	buf []byte
}

// next reads one frame. io.EOF at a frame boundary surfaces as io.EOF;
// EOF inside a frame as io.ErrUnexpectedEOF.
func (fr *frameReader) next() (typ byte, payload []byte, err error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(fr.hdr[:])
	if n == 0 {
		return 0, nil, errFrameEmpty
	}
	if n > MaxBinaryFrame {
		//tslint:allow hotpath oversized-frame rejection: the connection fails here
		return 0, nil, fmt.Errorf("%w: %d > %d", errFrameTooLarge, n, MaxBinaryFrame)
	}
	if cap(fr.buf) < int(n) {
		fr.buf = make([]byte, n) //tslint:allow hotpath buffer growth amortizes to zero: the steady state reuses the capacity
	}
	fr.buf = fr.buf[:n]
	if _, err := io.ReadFull(fr.r, fr.buf); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return fr.buf[0], fr.buf[1:], nil
}

// uvarint decodes an unsigned varint at p[off:], returning the value and
// the next offset.
func uvarint(p []byte, off int) (uint64, int, error) {
	v, n := binary.Uvarint(p[off:])
	if n <= 0 {
		return 0, 0, errTruncated
	}
	return v, off + n, nil
}

// varint decodes a zigzag varint at p[off:].
func varint(p []byte, off int) (int64, int, error) {
	v, n := binary.Varint(p[off:])
	if n <= 0 {
		return 0, 0, errTruncated
	}
	return v, off + n, nil
}

// sessionID extracts the fixed-width session id that leads a
// session-scoped payload, returning the remainder.
func sessionID(p []byte) (id, rest []byte, err error) {
	if len(p) < binIDLen {
		return nil, nil, errTruncated
	}
	return p[:binIDLen], p[binIDLen:], nil
}

// appendTimestamps encodes a getts response payload: pid, count, then the
// batch with the first (rnd, turn) absolute and every later pair as
// per-field deltas — all zigzag varints, so the common
// same-rnd/ascending-turn batch costs ~2 bytes per timestamp.
//
//tslint:hotpath
func appendTimestamps(dst []byte, pid int, ts []tsspace.Timestamp) []byte {
	dst = binary.AppendUvarint(dst, uint64(pid))
	dst = binary.AppendUvarint(dst, uint64(len(ts)))
	var prev tsspace.Timestamp
	for _, t := range ts {
		dst = binary.AppendVarint(dst, t.Rnd-prev.Rnd)
		dst = binary.AppendVarint(dst, t.Turn-prev.Turn)
		prev = t
	}
	return dst
}

// decodeTimestamps decodes a getts response payload into dst, returning
// the pid and the batch size. A batch larger than len(dst) is an error:
// the caller sized the request, so an oversized reply is a protocol
// violation, not a reason to allocate.
//
//tslint:hotpath
func decodeTimestamps(p []byte, dst []tsspace.Timestamp) (pid, n int, err error) {
	v, off, err := uvarint(p, 0)
	if err != nil {
		return 0, 0, err
	}
	pid = int(v)
	v, off, err = uvarint(p, off)
	if err != nil {
		return 0, 0, err
	}
	if v > uint64(len(dst)) {
		//tslint:allow hotpath malformed-reply rejection: the connection is torn down after this
		return 0, 0, fmt.Errorf("tsserve: binary batch of %d exceeds the %d requested", v, len(dst))
	}
	n = int(v)
	var prev tsspace.Timestamp
	for i := 0; i < n; i++ {
		var dr, dt int64
		if dr, off, err = varint(p, off); err != nil {
			return 0, 0, err
		}
		if dt, off, err = varint(p, off); err != nil {
			return 0, 0, err
		}
		prev = tsspace.Timestamp{Rnd: prev.Rnd + dr, Turn: prev.Turn + dt}
		dst[i] = prev
	}
	if off != len(p) {
		//tslint:allow hotpath malformed-reply rejection: the connection is torn down after this
		return 0, 0, fmt.Errorf("tsserve: %d trailing bytes after binary batch", len(p)-off)
	}
	return pid, n, nil
}

// appendError encodes an error response payload.
func appendError(dst []byte, code byte, msg string) []byte {
	dst = append(dst, code)
	return append(dst, msg...)
}

// decodeError decodes an error response payload into an *APIError carrying
// the shared wire code, so errors.Is sees the same typed SDK errors on
// both protocols. The binary protocol has no status line, so StatusCode
// stays zero.
func decodeError(p []byte) error {
	if len(p) < 1 {
		return errTruncated
	}
	//tslint:allow hotpath error replies are off the steady-state path and must carry a full APIError
	return &APIError{StatusCode: 0, Code: binCodeString(p[0]), Message: string(p[1:])}
}
