package tsserve_test

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"tsspace"
	"tsspace/tsserve"
)

// GET /catalog is the timestamp registry over the wire: same names in
// the same order, same summaries, same one-shot flags and proc floors.
func TestCatalogMirrorsRegistry(t *testing.T) {
	ctx := context.Background()
	c, _ := newTestServer(t)

	got, err := c.Catalog(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := tsspace.Catalog()
	if len(got) != len(want) {
		t.Fatalf("catalog has %d algorithms, registry has %d", len(got), len(want))
	}
	for i, e := range got {
		w := want[i]
		if e.Name != w.Name || e.Summary != w.Summary || e.OneShot != w.OneShot || e.MinProcs != w.MinProcs {
			t.Errorf("catalog[%d] = %+v, registry says %+v", i, e, w)
		}
	}
}

// PUT /ns/{name} is idempotent for an identical spec, a typed conflict
// for a different one, and refuses to shadow the default namespace;
// DELETE answers a typed unknown-namespace once the name is gone.
func TestProvisionDeprovisionTypedErrors(t *testing.T) {
	ctx := context.Background()
	c, _ := newTestServer(t, tsspace.WithProcs(4))

	spec := tsserve.ProvisionRequest{Algorithm: "collect", Procs: 4, MaxSessions: 3}
	pr, err := c.ProvisionNamespace(ctx, "team-a", spec)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Created || pr.Algorithm != "collect" || pr.Procs != 4 || pr.MaxSessions != 3 || pr.Registers == 0 {
		t.Fatalf("provision = %+v, want a created 4-proc collect namespace", pr)
	}

	// Identical re-PUT: success, Created false, nothing re-provisioned.
	again, err := c.ProvisionNamespace(ctx, "team-a", spec)
	if err != nil {
		t.Fatal(err)
	}
	if again.Created {
		t.Fatalf("idempotent re-PUT reports Created: %+v", again)
	}

	// A different spec under the same name is a typed conflict.
	if _, err := c.ProvisionNamespace(ctx, "team-a", tsserve.ProvisionRequest{Procs: 8}); !errors.Is(err, tsserve.ErrNamespaceExists) {
		t.Fatalf("conflicting re-PUT = %v, want ErrNamespaceExists", err)
	}
	// So is trying to re-provision the default namespace.
	if _, err := c.ProvisionNamespace(ctx, tsserve.DefaultNamespace, tsserve.ProvisionRequest{}); !errors.Is(err, tsserve.ErrNamespaceExists) {
		t.Fatalf("provisioning %q = %v, want ErrNamespaceExists", tsserve.DefaultNamespace, err)
	}
	// Names that cannot live in a URL path or label value are rejected.
	if _, err := c.ProvisionNamespace(ctx, "Bad.Name", tsserve.ProvisionRequest{}); err == nil {
		t.Fatal("provisioning an invalid name succeeded")
	}

	names, err := c.Namespaces(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != tsserve.DefaultNamespace || names[1] != "team-a" {
		t.Fatalf("GET /ns = %v, want [default team-a]", names)
	}

	dr, err := c.DeprovisionNamespace(ctx, "team-a")
	if err != nil {
		t.Fatal(err)
	}
	if dr.Name != "team-a" || dr.ReleasedSessions != 0 {
		t.Fatalf("deprovision = %+v, want team-a with no released sessions", dr)
	}
	if _, err := c.DeprovisionNamespace(ctx, "team-a"); !errors.Is(err, tsserve.ErrUnknownNamespace) {
		t.Fatalf("double deprovision = %v, want ErrUnknownNamespace", err)
	}
	if _, err := c.DeprovisionNamespace(ctx, tsserve.DefaultNamespace); err == nil {
		t.Fatal("deprovisioning the default namespace succeeded")
	}
}

// A namespace's session quota is one book across both transports: leases
// held over HTTP count against binary attaches and vice versa, rejections
// are typed on both wires, and a detach frees the slot for either.
func TestNamespaceQuotaSharedAcrossTransports(t *testing.T) {
	bc, c, _, _ := newBinaryServer(t, tsserve.ServerConfig{},
		tsspace.WithAlgorithm("collect"), tsspace.WithProcs(8))
	ctx := context.Background()

	if _, err := c.ProvisionNamespace(ctx, "quota", tsserve.ProvisionRequest{Procs: 8, MaxSessions: 1}); err != nil {
		t.Fatal(err)
	}
	nsc := c.Namespace("quota")

	hs, err := nsc.Attach(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nsc.Attach(ctx); !errors.Is(err, tsserve.ErrQuota) {
		t.Fatalf("second HTTP attach = %v, want ErrQuota", err)
	}
	if _, err := bc.AttachNamespace(ctx, "quota"); !errors.Is(err, tsserve.ErrQuota) {
		t.Fatalf("binary attach against a full quota = %v, want ErrQuota", err)
	}
	if err := hs.Detach(); err != nil {
		t.Fatal(err)
	}

	// The freed slot serves the binary transport, and a binary detach
	// frees it again for HTTP — the release path on both wires.
	bs, err := bc.AttachNamespace(ctx, "quota")
	if err != nil {
		t.Fatalf("binary attach after release: %v", err)
	}
	if _, err := bs.GetTS(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := nsc.Attach(ctx); !errors.Is(err, tsserve.ErrQuota) {
		t.Fatalf("HTTP attach while binary holds the slot = %v, want ErrQuota", err)
	}
	if err := bs.Detach(); err != nil {
		t.Fatal(err)
	}
	hs2, err := nsc.Attach(ctx)
	if err != nil {
		t.Fatalf("HTTP attach after binary detach: %v", err)
	}
	hs2.Detach()
}

// Two provisioned namespaces are two Objects: separate registers,
// separate call counters, separate space meters — and a session id
// minted in one namespace is unknown through the other's routes.
func TestCrossNamespaceIsolation(t *testing.T) {
	ctx := context.Background()
	c, _ := newTestServer(t, tsspace.WithProcs(4), tsspace.WithMetering())

	for _, name := range []string{"iso-a", "iso-b"} {
		if _, err := c.ProvisionNamespace(ctx, name, tsserve.ProvisionRequest{Procs: 8}); err != nil {
			t.Fatal(err)
		}
	}
	sa, err := c.Namespace("iso-a").Attach(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Detach()
	sb, err := c.Namespace("iso-b").Attach(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Detach()

	for i := 0; i < 3; i++ {
		if _, err := sa.GetTS(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sb.GetTS(ctx); err != nil {
		t.Fatal(err)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]tsserve.NamespaceMetrics{}
	for _, nm := range m.Namespaces {
		byName[nm.Name] = nm
	}
	ma, mb := byName["iso-a"], byName["iso-b"]
	if ma.Calls != 3 || mb.Calls != 1 {
		t.Fatalf("per-namespace calls (%d, %d), want (3, 1) — counters bleed across namespaces", ma.Calls, mb.Calls)
	}
	if ma.Space == nil || mb.Space == nil {
		t.Fatalf("provisioned namespaces missing space meters: %+v / %+v", ma, mb)
	}
	if ma.Space.Writes == mb.Space.Writes && ma.Space.Reads == mb.Space.Reads {
		t.Fatalf("space meters identical across namespaces taking different traffic: %+v", ma.Space)
	}
	if ma.WireSessions != 1 || mb.WireSessions != 1 {
		t.Fatalf("per-namespace lease gauges (%d, %d), want (1, 1)", ma.WireSessions, mb.WireSessions)
	}

	// iso-a's capability id must be invisible through iso-b's routes.
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL()+"/ns/iso-b/session/"+sa.ID()+"/getts", bytes.NewReader([]byte(`{"count":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-namespace getts status = %d, want 404", resp.StatusCode)
	}
}

// An attach against a name the broker does not hold is its own typed
// rejection on both transports: counted apart from unknown sessions, and
// recorded in the flight recorder with a distinct error detail.
func TestUnknownNamespaceDistinctFromUnknownSession(t *testing.T) {
	ctx := context.Background()
	bc, c, front, _ := newBinaryServer(t, tsserve.ServerConfig{},
		tsspace.WithAlgorithm("collect"), tsspace.WithProcs(2))

	if _, err := c.Namespace("nope").Attach(ctx); !errors.Is(err, tsserve.ErrUnknownNamespace) {
		t.Fatalf("HTTP attach to unprovisioned namespace = %v, want ErrUnknownNamespace", err)
	}
	if _, err := bc.AttachNamespace(ctx, "nope"); !errors.Is(err, tsserve.ErrUnknownNamespace) {
		t.Fatalf("binary attach to unprovisioned namespace = %v, want ErrUnknownNamespace", err)
	}

	// Drive the unknown-session path for contrast.
	bogus := strings.Repeat("e", 16)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL()+"/session/"+bogus+"/getts", bytes.NewReader([]byte(`{"count":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.UnknownNamespaces != 2 {
		t.Fatalf("unknown-namespace rejections = %d, want 2", m.UnknownNamespaces)
	}
	if m.UnknownSessions != 1 {
		t.Fatalf("unknown-session rejections = %d, want 1", m.UnknownSessions)
	}

	var nsDetail, sessDetail int64
	var sawNS bool
	for _, e := range dumpEvents(t, front) {
		if e.Kind != "error" {
			continue
		}
		if e.Session == bogus {
			sessDetail = e.Detail
		} else {
			nsDetail = e.Detail
			sawNS = true
		}
	}
	if !sawNS {
		t.Fatal("no flight-recorder error event for the unknown namespace")
	}
	if nsDetail == sessDetail {
		t.Fatalf("unknown-namespace and unknown-session share error detail %d — indistinguishable in the recorder", nsDetail)
	}
}

// Flight-recorder events carry the namespace id: leases bound into a
// provisioned namespace must not be tagged as default-namespace events.
func TestEventsCarryNamespaceID(t *testing.T) {
	ctx := context.Background()
	c, _, front := newTestServerCfg(t, tsserve.ServerConfig{}, tsspace.WithProcs(2))

	if _, err := c.ProvisionNamespace(ctx, "tagged", tsserve.ProvisionRequest{Procs: 2}); err != nil {
		t.Fatal(err)
	}
	sess, err := c.Namespace("tagged").Attach(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Detach()

	for _, e := range dumpEvents(t, front) {
		if e.Kind == "attach" && e.Session == sess.ID() {
			if e.NS == 0 {
				t.Fatal("attach event in a provisioned namespace carries the default namespace id")
			}
			return
		}
	}
	t.Fatalf("no attach event for session %s", sess.ID())
}

// Provision/deprovision churn under live attach traffic on both
// transports: every failure must be one of the typed, expected shapes,
// and the final deprovision must leave no leaked quota slots. Run with
// -race, this is the broker's concurrency gate.
func TestNamespaceChurnUnderLiveTraffic(t *testing.T) {
	bc, c, _, _ := newBinaryServer(t, tsserve.ServerConfig{},
		tsspace.WithAlgorithm("collect"), tsspace.WithProcs(16))
	ctx := context.Background()
	const name = "churny"

	expected := func(err error) bool {
		return err == nil ||
			errors.Is(err, tsserve.ErrUnknownNamespace) ||
			errors.Is(err, tsserve.ErrQuota) ||
			errors.Is(err, tsspace.ErrDetached) ||
			errors.Is(err, tsspace.ErrClosed)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var fail sync.Once
	var failure error
	report := func(err error) { fail.Do(func() { failure = err }) }

	// One goroutine churns the namespace's whole lifecycle.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.ProvisionNamespace(ctx, name, tsserve.ProvisionRequest{Procs: 16, MaxSessions: 4}); err != nil && !errors.Is(err, tsserve.ErrNamespaceExists) {
				report(err)
				return
			}
			if _, err := c.DeprovisionNamespace(ctx, name); err != nil && !errors.Is(err, tsserve.ErrUnknownNamespace) {
				report(err)
				return
			}
		}
	}()

	// Workers attach into the churning namespace over both transports and
	// use whatever lease they win until it is ripped out from under them.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		binary := w%2 == 0
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var sess tsspace.SessionAPI
				var err error
				if binary {
					sess, err = bc.AttachNamespace(ctx, name)
				} else {
					sess, err = c.Namespace(name).Attach(ctx)
				}
				if err != nil {
					if !expected(err) {
						report(err)
						return
					}
					continue
				}
				for i := 0; i < 4; i++ {
					if _, err := sess.GetTS(ctx); err != nil {
						if !expected(err) {
							report(err)
							return
						}
						break
					}
				}
				if err := sess.Detach(); !expected(err) {
					report(err)
					return
				}
			}
		}()
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if failure != nil {
		t.Fatalf("churn surfaced an untyped failure: %v", failure)
	}

	// Settle: whatever round the churner was in, remove the namespace and
	// check the broker's books are balanced — a re-provisioned namespace
	// must accept exactly its quota again (no leaked slots).
	if _, err := c.DeprovisionNamespace(ctx, name); err != nil && !errors.Is(err, tsserve.ErrUnknownNamespace) {
		t.Fatal(err)
	}
	if _, err := c.ProvisionNamespace(ctx, name, tsserve.ProvisionRequest{Procs: 16, MaxSessions: 2}); err != nil {
		t.Fatal(err)
	}
	s1, err := c.Namespace(name).Attach(ctx)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Namespace(name).Attach(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Namespace(name).Attach(ctx); !errors.Is(err, tsserve.ErrQuota) {
		t.Fatalf("attach beyond a fresh quota of 2 = %v, want ErrQuota", err)
	}
	s1.Detach()
	s2.Detach()
	if _, err := c.DeprovisionNamespace(ctx, name); err != nil {
		t.Fatal(err)
	}
}

// The steady-state frame path through a provisioned namespace is the
// same zero-allocation path the default namespace gets: the namespace
// binding costs one attach-time lookup, not per-op work.
func TestAttachNamespaceGetTSBatchAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	bc, c, _, _ := newBinaryServer(t, tsserve.ServerConfig{},
		tsspace.WithAlgorithm("collect"), tsspace.WithProcs(4))
	ctx := context.Background()
	if _, err := c.ProvisionNamespace(ctx, "hot", tsserve.ProvisionRequest{Procs: 4}); err != nil {
		t.Fatal(err)
	}
	sess, err := bc.AttachNamespace(ctx, "hot")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Detach()
	buf := make([]tsspace.Timestamp, 64)
	for i := 0; i < 8; i++ {
		if _, err := sess.GetTSBatch(ctx, buf); err != nil {
			t.Fatal(err)
		}
	}
	var allocs float64
	for attempt := 0; attempt < 3; attempt++ {
		allocs = testing.AllocsPerRun(200, func() {
			if _, err := sess.GetTSBatch(ctx, buf); err != nil {
				t.Fatal(err)
			}
		})
		if allocs == 0 {
			return
		}
	}
	t.Fatalf("namespace-bound GetTSBatch allocates %.2f/op, want 0", allocs)
}
