package tsspace_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"tsspace"
	"tsspace/internal/hbcheck"
)

// The churn workload of the ISSUE acceptance criteria: well over 1000
// short-lived sessions contending for a 16-pid long-lived object. Run
// under -race (CI does) it checks three properties at once:
//
//   - leasing never hands the same pid to two live sessions (the inFlight
//     CAS below would observe the double lease);
//   - per-pid sequence numbers survive recycling without races;
//   - the happens-before property holds across every pair of calls, over
//     session and lease boundaries.
func TestSessionChurnRaceHappensBefore(t *testing.T) {
	const (
		procs    = 16
		workers  = 32
		sessions = 1280 // per the acceptance bar: ≥ 1000 through 16 pids
		calls    = 3
	)
	ctx := context.Background()
	obj := mustNew(t, tsspace.WithProcs(procs), tsspace.WithMetering())

	var (
		inFlight [procs]atomic.Bool
		rec      hbcheck.Recorder[tsspace.Timestamp]
		next     atomic.Int64 // session ids, used as event identity
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				id := int(next.Add(1)) - 1
				if id >= sessions {
					return
				}
				s, err := obj.Attach(ctx)
				if err != nil {
					t.Errorf("session %d: attach: %v", id, err)
					return
				}
				if !inFlight[s.Pid()].CompareAndSwap(false, true) {
					t.Errorf("session %d: pid %d double-leased", id, s.Pid())
				}
				for k := 0; k < calls; k++ {
					start := rec.Begin()
					ts, err := s.GetTS(ctx)
					if err != nil {
						t.Errorf("session %d call %d: %v", id, k, err)
						break
					}
					rec.End(id, k, start, ts)
				}
				inFlight[s.Pid()].Store(false)
				if err := s.Detach(); err != nil {
					t.Errorf("session %d: detach: %v", id, err)
				}
			}
		}()
	}
	wg.Wait()

	events := rec.Events()
	if len(events) != sessions*calls {
		t.Fatalf("recorded %d events, want %d", len(events), sessions*calls)
	}
	if err := hbcheck.Check(events, obj.Compare); err != nil {
		t.Errorf("happens-before violated across session churn: %v", err)
	}

	st := obj.Stats()
	if st.Calls != sessions*calls || st.Attaches != sessions || st.ActiveSessions != 0 {
		t.Errorf("Stats = %+v, want %d calls / %d attaches / 0 active", st, sessions*calls, sessions)
	}
	if u, _ := obj.Usage(); u.Written != procs {
		t.Errorf("collect over %d pids wrote %d registers, want %d", procs, u.Written, procs)
	}
}

// The batch-first churn workload of the v2 redesign: 64 goroutines loop
// Attach → GetTSBatch → Detach against a 16-pid object while dedicated
// readers hammer Usage() and Stats() — under -race this checks that the
// lock-free hot path, the padded seq slots, and the cold-path bookkeeping
// never trade data races for the dropped object-wide mutex. Afterwards
// every worker's batch stream goes through hbcheck: batches from one
// worker are sequential in real time, so the whole per-worker stream must
// be strictly ordered — in particular every batch must be internally
// strictly ordered.
func TestBatchChurnRaceWithConcurrentReaders(t *testing.T) {
	const (
		procs    = 16
		workers  = 64
		rounds   = 24 // attach/batch/detach cycles per worker
		maxBatch = 8
		readers  = 4
	)
	ctx := context.Background()
	obj := mustNew(t, tsspace.WithProcs(procs), tsspace.WithMetering())

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	for i := 0; i < readers; i++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, metered := obj.Usage(); !metered {
					t.Error("metered object reported unmetered mid-run")
					return
				}
				if st := obj.Stats(); st.ActiveSessions < 0 || st.ActiveSessions > procs {
					t.Errorf("Stats.ActiveSessions = %d with %d pids", st.ActiveSessions, procs)
					return
				}
			}
		}()
	}

	recs := make([]hbcheck.Recorder[tsspace.Timestamp], workers)
	var totalTS atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec := &recs[w]
			buf := make([]tsspace.Timestamp, maxBatch)
			seq := 0
			for round := 0; round < rounds; round++ {
				s, err := obj.Attach(ctx)
				if err != nil {
					t.Errorf("worker %d round %d: attach: %v", w, round, err)
					return
				}
				size := 1 + (w+round)%maxBatch
				start := rec.Begin()
				n, err := s.GetTSBatch(ctx, buf[:size])
				if err != nil || n != size {
					t.Errorf("worker %d round %d: batch = (%d, %v), want (%d, nil)", w, round, n, err, size)
					s.Detach()
					return
				}
				// All timestamps of one batch share the batch's interval:
				// hbcheck then orders them against every non-overlapping
				// call while the explicit loop below pins the within-batch
				// order the shared interval cannot express.
				for i := 0; i < n; i++ {
					rec.End(w, seq, start, buf[i])
					seq++
				}
				for i := 0; i+1 < n; i++ {
					if !obj.Compare(buf[i], buf[i+1]) || obj.Compare(buf[i+1], buf[i]) {
						t.Errorf("worker %d round %d: batch not internally strictly ordered at %d: %v vs %v",
							w, round, i, buf[i], buf[i+1])
					}
				}
				totalTS.Add(int64(n))
				if err := s.Detach(); err != nil {
					t.Errorf("worker %d round %d: detach: %v", w, round, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()

	// Per-worker hbcheck: a worker's batches are sequential, so its whole
	// stream (across leases and pids) must be strictly ordered.
	for w := range recs {
		if err := hbcheck.Check(recs[w].Events(), obj.Compare); err != nil {
			t.Errorf("worker %d: happens-before violated across its batch stream: %v", w, err)
		}
	}

	st := obj.Stats()
	if st.Calls != uint64(totalTS.Load()) {
		t.Errorf("object counted %d calls, workers issued %d timestamps", st.Calls, totalTS.Load())
	}
	if st.Attaches != workers*rounds || st.ActiveSessions != 0 {
		t.Errorf("Stats = %+v, want %d attaches / 0 active", st, workers*rounds)
	}
}

// One-shot churn: many logical clients race for a budget of n timestamps;
// exactly n must win and the rest must see the typed exhaustion error.
func TestOneShotChurnBudgetRace(t *testing.T) {
	const procs = 16
	ctx := context.Background()
	obj := mustNew(t, tsspace.WithAlgorithm("sqrt"), tsspace.WithProcs(procs))

	var issued, exhausted atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 4*procs; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := obj.Attach(ctx)
			if err != nil {
				exhausted.Add(1)
				return
			}
			defer s.Detach()
			if _, err := s.GetTS(ctx); err == nil {
				issued.Add(1)
			}
		}()
	}
	wg.Wait()
	if issued.Load() != procs {
		t.Errorf("issued %d timestamps from a budget of %d", issued.Load(), procs)
	}
	if exhausted.Load() != 4*procs-procs {
		t.Errorf("%d clients saw exhaustion, want %d", exhausted.Load(), 3*procs)
	}
}
