package tsspace_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"tsspace"
	"tsspace/internal/hbcheck"
)

// The churn workload of the ISSUE acceptance criteria: well over 1000
// short-lived sessions contending for a 16-pid long-lived object. Run
// under -race (CI does) it checks three properties at once:
//
//   - leasing never hands the same pid to two live sessions (the inFlight
//     CAS below would observe the double lease);
//   - per-pid sequence numbers survive recycling without races;
//   - the happens-before property holds across every pair of calls, over
//     session and lease boundaries.
func TestSessionChurnRaceHappensBefore(t *testing.T) {
	const (
		procs    = 16
		workers  = 32
		sessions = 1280 // per the acceptance bar: ≥ 1000 through 16 pids
		calls    = 3
	)
	ctx := context.Background()
	obj := mustNew(t, tsspace.WithProcs(procs), tsspace.WithMetering())

	var (
		inFlight [procs]atomic.Bool
		rec      hbcheck.Recorder[tsspace.Timestamp]
		next     atomic.Int64 // session ids, used as event identity
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				id := int(next.Add(1)) - 1
				if id >= sessions {
					return
				}
				s, err := obj.Attach(ctx)
				if err != nil {
					t.Errorf("session %d: attach: %v", id, err)
					return
				}
				if !inFlight[s.Pid()].CompareAndSwap(false, true) {
					t.Errorf("session %d: pid %d double-leased", id, s.Pid())
				}
				for k := 0; k < calls; k++ {
					start := rec.Begin()
					ts, err := s.GetTS(ctx)
					if err != nil {
						t.Errorf("session %d call %d: %v", id, k, err)
						break
					}
					rec.End(id, k, start, ts)
				}
				inFlight[s.Pid()].Store(false)
				if err := s.Detach(); err != nil {
					t.Errorf("session %d: detach: %v", id, err)
				}
			}
		}()
	}
	wg.Wait()

	events := rec.Events()
	if len(events) != sessions*calls {
		t.Fatalf("recorded %d events, want %d", len(events), sessions*calls)
	}
	if err := hbcheck.Check(events, obj.Compare); err != nil {
		t.Errorf("happens-before violated across session churn: %v", err)
	}

	st := obj.Stats()
	if st.Calls != sessions*calls || st.Attaches != sessions || st.ActiveSessions != 0 {
		t.Errorf("Stats = %+v, want %d calls / %d attaches / 0 active", st, sessions*calls, sessions)
	}
	if u, _ := obj.Usage(); u.Written != procs {
		t.Errorf("collect over %d pids wrote %d registers, want %d", procs, u.Written, procs)
	}
}

// One-shot churn: many logical clients race for a budget of n timestamps;
// exactly n must win and the rest must see the typed exhaustion error.
func TestOneShotChurnBudgetRace(t *testing.T) {
	const procs = 16
	ctx := context.Background()
	obj := mustNew(t, tsspace.WithAlgorithm("sqrt"), tsspace.WithProcs(procs))

	var issued, exhausted atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 4*procs; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := obj.Attach(ctx)
			if err != nil {
				exhausted.Add(1)
				return
			}
			defer s.Detach()
			if _, err := s.GetTS(ctx); err == nil {
				issued.Add(1)
			}
		}()
	}
	wg.Wait()
	if issued.Load() != procs {
		t.Errorf("issued %d timestamps from a budget of %d", issued.Load(), procs)
	}
	if exhausted.Load() != 4*procs-procs {
		t.Errorf("%d clients saw exhaustion, want %d", exhausted.Load(), 3*procs)
	}
}
