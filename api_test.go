package tsspace_test

import (
	"bytes"
	"flag"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestPublicSurface is the apidiff-style gate on the SDK: it renders the
// exported declarations of the public packages from their ASTs and
// compares against checked-in golden files, so any change to the public
// surface — added, removed or re-signed symbols — fails CI until the
// golden is regenerated deliberately:
//
//	go test -run TestPublicSurface . -update-api
//
// Initializers, function bodies and unexported members are stripped: the
// golden tracks the surface, not the implementation.
var updateAPI = flag.Bool("update-api", false, "rewrite the public-surface golden files")

func TestPublicSurface(t *testing.T) {
	for _, pkg := range []struct{ name, dir string }{
		{"tsspace", "."},
		{"tsserve", "tsserve"},
		{"tsload", "tsload"},
	} {
		t.Run(pkg.name, func(t *testing.T) {
			got := publicSurface(t, pkg.dir)
			golden := filepath.Join("testdata", "api", pkg.name+".golden")
			if *updateAPI {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d lines)", golden, strings.Count(got, "\n"))
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (regenerate with `go test -run TestPublicSurface . -update-api`): %v", err)
			}
			if got != string(want) {
				t.Errorf("public surface of %s changed.\n--- want (%s)\n%s\n--- got\n%s\n"+
					"If the change is intentional, regenerate with `go test -run TestPublicSurface . -update-api`.",
					pkg.name, golden, want, got)
			}
		})
	}
}

// publicSurface renders one line per exported declaration of the package
// in dir, sorted.
func publicSurface(t *testing.T, dir string) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				lines = append(lines, declSurface(t, fset, decl)...)
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

func declSurface(t *testing.T, fset *token.FileSet, decl ast.Decl) []string {
	t.Helper()
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedRecv(d.Recv) {
			return nil
		}
		fn := *d
		fn.Doc, fn.Body = nil, nil
		return []string{render(t, fset, &fn)}
	case *ast.GenDecl:
		var lines []string
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				ts := *s
				ts.Doc, ts.Comment = nil, nil
				ts.Type = stripUnexported(ts.Type)
				lines = append(lines, render(t, fset, &ast.GenDecl{Tok: token.TYPE, Specs: []ast.Spec{&ts}}))
			case *ast.ValueSpec:
				// Initializers are implementation, not surface: keep the
				// exported names and the declared type only.
				var names []*ast.Ident
				for _, name := range s.Names {
					if name.IsExported() {
						names = append(names, ast.NewIdent(name.Name))
					}
				}
				if len(names) == 0 {
					continue
				}
				vs := &ast.ValueSpec{Names: names, Type: s.Type}
				lines = append(lines, render(t, fset, &ast.GenDecl{Tok: d.Tok, Specs: []ast.Spec{vs}}))
			}
		}
		return lines
	}
	return nil
}

// exportedRecv reports whether a method's receiver base type is exported
// (true for plain functions).
func exportedRecv(recv *ast.FieldList) bool {
	if recv == nil || len(recv.List) == 0 {
		return true
	}
	typ := recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr: // generic receiver
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// stripUnexported removes unexported fields and methods from struct and
// interface types, so the golden only pins the public members.
func stripUnexported(typ ast.Expr) ast.Expr {
	switch tt := typ.(type) {
	case *ast.StructType:
		out := *tt
		out.Fields = stripFields(tt.Fields)
		return &out
	case *ast.InterfaceType:
		out := *tt
		out.Methods = stripFields(tt.Methods)
		return &out
	}
	return typ
}

func stripFields(fields *ast.FieldList) *ast.FieldList {
	if fields == nil {
		return nil
	}
	out := &ast.FieldList{}
	for _, f := range fields.List {
		var names []*ast.Ident
		for _, name := range f.Names {
			if name.IsExported() {
				names = append(names, ast.NewIdent(name.Name))
			}
		}
		if len(f.Names) > 0 && len(names) == 0 {
			continue // all names unexported
		}
		nf := &ast.Field{Names: names, Type: f.Type, Tag: f.Tag}
		out.List = append(out.List, nf)
	}
	return out
}

func render(t *testing.T, fset *token.FileSet, node any) string {
	t.Helper()
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, node); err != nil {
		t.Fatal(err)
	}
	// Collapse multi-line renderings (struct types) into one canonical line.
	line := strings.Join(strings.Fields(buf.String()), " ")
	if line == "" {
		t.Fatal("empty rendering")
	}
	return line
}
